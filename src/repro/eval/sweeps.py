"""Design-space sweeps over architecture parameters.

The paper's pitch (Section I): "by varying the machine description and
evaluating the resulting object code, the design space of both hardware
and software components can be effectively explored."  These helpers
run a workload set across machine families and collect code size,
spills, and resource utilisation — the data a co-design loop ranks
candidates by.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import CoverageError
from repro.ir.dag import BlockDAG
from repro.isdl.model import Machine
from repro.covering.config import HeuristicConfig
from repro.covering.engine import generate_block_solution
from repro.covering.render import utilization


@dataclass
class SweepPoint:
    """One (workload, machine) measurement."""

    workload: str
    machine: str
    instructions: int
    spills: int
    registers_used: Dict[str, int]
    utilization: Dict[str, float]
    failed: Optional[str] = None


class RankEntry(NamedTuple):
    """One machine's place in a sweep ranking.

    Tuple-shaped for backward compatibility (``entry[0]`` is the
    machine, ``entry[1]`` the code size), with the failure count as an
    explicit third field instead of a ``-1`` sentinel poisoning the
    size column.
    """

    machine: str
    instructions: int
    failures: int

    @property
    def usable(self) -> bool:
        """True when every workload compiled on this machine."""
        return self.failures == 0


@dataclass
class SweepResult:
    """All points of a sweep plus ranking helpers."""

    points: List[SweepPoint] = field(default_factory=list)

    def total_instructions(self, machine: str) -> int:
        """Summed code size over the workloads that *compiled* on
        ``machine`` (the paper's ROM metric).  Failed compiles are not
        folded into this number — check :meth:`failure_count` (or the
        :class:`RankEntry` ``failures`` field) to see how much of the
        suite the total actually covers."""
        return sum(
            point.instructions
            for point in self.points
            if point.machine == machine and not point.failed
        )

    def failure_count(self, machine: str) -> int:
        """How many workloads failed to compile on ``machine``."""
        return sum(
            1
            for point in self.points
            if point.machine == machine and point.failed
        )

    def machines(self) -> List[str]:
        """Machine names in first-seen order."""
        seen: List[str] = []
        for point in self.points:
            if point.machine not in seen:
                seen.append(point.machine)
        return seen

    def mean_utilization(self, machine: str) -> Dict[str, float]:
        """Per-resource utilization averaged over the workloads that
        compiled on ``machine`` (empty if none did)."""
        totals: Dict[str, float] = {}
        compiled = 0
        for point in self.points:
            if point.machine != machine or point.failed:
                continue
            compiled += 1
            for resource, fraction in point.utilization.items():
                totals[resource] = totals.get(resource, 0.0) + fraction
        return {
            resource: total / compiled
            for resource, total in sorted(totals.items())
        }

    def ranking(self) -> List[RankEntry]:
        """Machines by total code size, cheapest first.

        Fully-usable machines (zero failures) lead, ordered by code
        size; machines with failures follow, ordered by how much of the
        suite they lost — their ``instructions`` field still reports
        the size of what *did* compile, so a near-miss candidate is
        visible rather than collapsed to a sentinel."""
        entries = [
            RankEntry(
                machine=name,
                instructions=self.total_instructions(name),
                failures=self.failure_count(name),
            )
            for name in self.machines()
        ]
        return sorted(
            entries,
            key=lambda e: (e.failures > 0, e.failures, e.instructions, e.machine),
        )

    def table(self) -> str:
        """Workload x machine code-size table plus the ranking."""
        machines = self.machines()
        workloads: List[str] = []
        for point in self.points:
            if point.workload not in workloads:
                workloads.append(point.workload)
        width = max([len(m) for m in machines] + [8])
        lines = [
            "workload  " + "  ".join(m.rjust(width) for m in machines)
        ]
        cells: Dict[Tuple[str, str], str] = {}
        for point in self.points:
            cells[(point.workload, point.machine)] = (
                "fail" if point.failed else str(point.instructions)
            )
        for workload in workloads:
            row = [
                cells.get((workload, machine), "-").rjust(width)
                for machine in machines
            ]
            lines.append(f"{workload:8s}  " + "  ".join(row))
        lines.append("")
        lines.append("ranking (total instructions, cheapest first):")
        for position, entry in enumerate(self.ranking(), 1):
            label = str(entry.instructions)
            if entry.failures:
                label += f" ({entry.failures} workload(s) failed)"
            lines.append(f"  {position}. {entry.machine}: {label}")
        return "\n".join(lines)


def sweep(
    workloads: Sequence[Tuple[str, BlockDAG]],
    machines: Sequence[Machine],
    config: Optional[HeuristicConfig] = None,
) -> SweepResult:
    """Compile every workload on every machine; failures are recorded,
    not raised (an undersized candidate is a data point, not an error)."""
    result = SweepResult()
    for machine in machines:
        for name, dag in workloads:
            try:
                solution = generate_block_solution(dag, machine, config)
            except CoverageError as error:
                result.points.append(
                    SweepPoint(
                        workload=name,
                        machine=machine.name,
                        instructions=0,
                        spills=0,
                        registers_used={},
                        utilization={},
                        failed=str(error),
                    )
                )
                continue
            result.points.append(
                SweepPoint(
                    workload=name,
                    machine=machine.name,
                    instructions=solution.instruction_count,
                    spills=solution.spill_count,
                    registers_used=dict(solution.register_estimate),
                    utilization=utilization(solution),
                )
            )
    return result


def register_file_sweep(
    workloads: Sequence[Tuple[str, BlockDAG]],
    machine_factory: Callable[[int], Machine],
    register_counts: Iterable[int] = (2, 3, 4, 6, 8),
    config: Optional[HeuristicConfig] = None,
) -> SweepResult:
    """Sweep one machine family over register-file depths.

    Answers the Ex6/Ex7 question systematically: how small can the
    register files get before code size explodes?
    """
    machines = [machine_factory(count) for count in register_counts]
    return sweep(workloads, machines, config)
