"""Design-space sweeps over architecture parameters.

The paper's pitch (Section I): "by varying the machine description and
evaluating the resulting object code, the design space of both hardware
and software components can be effectively explored."  These helpers
run a workload set across machine families and collect code size,
spills, and resource utilisation — the data a co-design loop ranks
candidates by.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import CoverageError
from repro.ir.dag import BlockDAG
from repro.isdl.model import Machine
from repro.covering.config import HeuristicConfig
from repro.covering.engine import generate_block_solution
from repro.covering.render import utilization


@dataclass
class SweepPoint:
    """One (workload, machine) measurement."""

    workload: str
    machine: str
    instructions: int
    spills: int
    registers_used: Dict[str, int]
    utilization: Dict[str, float]
    failed: Optional[str] = None


@dataclass
class SweepResult:
    """All points of a sweep plus ranking helpers."""

    points: List[SweepPoint] = field(default_factory=list)

    def total_instructions(self, machine: str) -> int:
        """Summed code size over all workloads on ``machine`` (the
        paper's ROM metric); failed compiles count as unusable."""
        total = 0
        for point in self.points:
            if point.machine != machine:
                continue
            if point.failed:
                return -1
            total += point.instructions
        return total

    def machines(self) -> List[str]:
        """Machine names in first-seen order."""
        seen: List[str] = []
        for point in self.points:
            if point.machine not in seen:
                seen.append(point.machine)
        return seen

    def ranking(self) -> List[Tuple[str, int]]:
        """Machines by total code size, cheapest first; unusable last."""
        totals = [
            (name, self.total_instructions(name)) for name in self.machines()
        ]
        usable = sorted(
            (t for t in totals if t[1] >= 0), key=lambda t: (t[1], t[0])
        )
        broken = [t for t in totals if t[1] < 0]
        return usable + broken

    def table(self) -> str:
        """Workload x machine code-size table plus the ranking."""
        machines = self.machines()
        workloads: List[str] = []
        for point in self.points:
            if point.workload not in workloads:
                workloads.append(point.workload)
        width = max([len(m) for m in machines] + [8])
        lines = [
            "workload  " + "  ".join(m.rjust(width) for m in machines)
        ]
        cells: Dict[Tuple[str, str], str] = {}
        for point in self.points:
            cells[(point.workload, point.machine)] = (
                "fail" if point.failed else str(point.instructions)
            )
        for workload in workloads:
            row = [
                cells.get((workload, machine), "-").rjust(width)
                for machine in machines
            ]
            lines.append(f"{workload:8s}  " + "  ".join(row))
        lines.append("")
        lines.append("ranking (total instructions, cheapest first):")
        for position, (name, total) in enumerate(self.ranking(), 1):
            label = "unusable" if total < 0 else str(total)
            lines.append(f"  {position}. {name}: {label}")
        return "\n".join(lines)


def sweep(
    workloads: Sequence[Tuple[str, BlockDAG]],
    machines: Sequence[Machine],
    config: Optional[HeuristicConfig] = None,
) -> SweepResult:
    """Compile every workload on every machine; failures are recorded,
    not raised (an undersized candidate is a data point, not an error)."""
    result = SweepResult()
    for machine in machines:
        for name, dag in workloads:
            try:
                solution = generate_block_solution(dag, machine, config)
            except CoverageError as error:
                result.points.append(
                    SweepPoint(
                        workload=name,
                        machine=machine.name,
                        instructions=0,
                        spills=0,
                        registers_used={},
                        utilization={},
                        failed=str(error),
                    )
                )
                continue
            result.points.append(
                SweepPoint(
                    workload=name,
                    machine=machine.name,
                    instructions=solution.instruction_count,
                    spills=solution.spill_count,
                    registers_used=dict(solution.register_estimate),
                    utilization=utilization(solution),
                )
            )
    return result


def register_file_sweep(
    workloads: Sequence[Tuple[str, BlockDAG]],
    machine_factory: Callable[[int], Machine],
    register_counts: Iterable[int] = (2, 3, 4, 6, 8),
    config: Optional[HeuristicConfig] = None,
) -> SweepResult:
    """Sweep one machine family over register-file depths.

    Answers the Ex6/Ex7 question systematically: how small can the
    register files get before code size explodes?
    """
    machines = [machine_factory(count) for count in register_counts]
    return sweep(workloads, machines, config)
