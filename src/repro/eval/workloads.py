"""The evaluation basic blocks Ex1–Ex5 (paper, Section VI).

"These examples are generic basic blocks that occur in DSP application
code.  Examples 1-2 are simple basic blocks that are found as part of a
conditional statement or loop.  Examples 3-5 are simple basic blocks of
loops that have been unrolled twice."

The paper prints only each block's size (original-DAG node count), not
its contents, so the blocks here are reconstructions: DSP kernels of the
stated provenance whose original-DAG node counts match the paper exactly
(8, 13, 11, 15, 16 — counting operations plus distinct leaf values).
All blocks use only ADD/SUB/MUL so they run on both Table architectures.
Ex6 and Ex7 are Ex4 and Ex5 re-run with 2 registers per file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ReproError
from repro.frontend.lower import compile_source
from repro.ir.dag import BlockDAG


@dataclass(frozen=True)
class Workload:
    """One evaluation basic block."""

    name: str
    description: str
    source: str
    paper_nodes: int  # the paper's "Original DAG #Nodes" column
    inputs: Dict[str, int]  # sample inputs for end-to-end validation
    #: variables that are dead after the block (unrolled induction
    #: variables) — their stores are stripped before code generation.
    discard: Tuple[str, ...] = ()

    def build(self) -> BlockDAG:
        """Lower the minic source to its (single) basic-block DAG."""
        return build_workload_dag(self)


def build_workload_dag(load: Workload) -> BlockDAG:
    """Lower a workload to its single basic-block DAG."""
    function = compile_source(load.source, name=load.name)
    blocks = list(function)
    if len(blocks) != 1:
        raise ReproError(
            f"workload {load.name} lowered to {len(blocks)} blocks; "
            f"expected a single basic block"
        )
    dag = blocks[0].dag
    if load.discard:
        from repro.opt.passes import dead_code_elimination

        for symbol in load.discard:
            dag.remove_store(symbol)
        dag, _ = dead_code_elimination(dag)
    return dag


WORKLOADS: List[Workload] = [
    Workload(
        name="Ex1",
        description=(
            "Windowed update from a conditional arm: "
            "y0 = (a+b)*(a-c), y1 = y0 + d."
        ),
        source="""
            y0 = (a + b) * (a - c);
            y1 = y0 + d;
        """,
        paper_nodes=8,
        inputs={"a": 7, "b": 3, "c": 2, "d": 11},
    ),
    Workload(
        name="Ex2",
        description=(
            "Adaptive-filter loop body: 2-tap MAC, output scaling, and "
            "error against a reference."
        ),
        source="""
            acc = acc + x0 * h0 + x1 * h1;
            y = acc * g;
            e = y - ref;
        """,
        paper_nodes=13,
        inputs={
            "acc": 5,
            "x0": 2,
            "h0": 3,
            "x1": 4,
            "h1": -1,
            "g": 2,
            "ref": 9,
        },
    ),
    Workload(
        name="Ex3",
        description=(
            "Variance accumulation, loop unrolled twice with per-phase "
            "means: acc += (x[i]-m[i])^2 for i in 0..1."
        ),
        source="""
            for (i = 0; i < 2; i = i + 1) {
                acc = acc + (x[i] - m[i]) * (x[i] - m[i]);
            }
        """,
        paper_nodes=11,
        inputs={"acc": 1, "x[0]": 9, "m[0]": 4, "x[1]": 6, "m[1]": 10},
        discard=("i",),
    ),
    Workload(
        name="Ex4",
        description=(
            "Matched-filter statistics, loop unrolled twice: running dot "
            "product and signal energy, combined into a decision product."
        ),
        source="""
            for (i = 0; i < 2; i = i + 1) {
                dot = dot + x[i] * h[i];
                en = en + x[i] * x[i];
            }
            p = dot * en;
        """,
        paper_nodes=15,
        inputs={"dot": 1, "en": 2, "x[0]": 3, "h[0]": 4, "x[1]": 5, "h[1]": 6},
        discard=("i",),
    ),
    Workload(
        name="Ex5",
        description=(
            "Complex multiply-accumulate (two unrolled real iterations of "
            "a rotation loop) plus an error term on the real channel."
        ),
        source="""
            re = re + (xr * hr - xi * hi);
            im = im + (xr * hi + xi * hr);
            e = re - t;
        """,
        paper_nodes=16,
        inputs={
            "re": 10,
            "im": -2,
            "xr": 3,
            "xi": 4,
            "hr": 5,
            "hi": 6,
            "t": 7,
        },
    ),
]

_BY_NAME = {w.name: w for w in WORKLOADS}


def workload(name: str) -> Workload:
    """Look up a workload by name (Ex1 … Ex5)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ReproError(
            f"unknown workload {name!r}; available: {sorted(_BY_NAME)}"
        ) from None
