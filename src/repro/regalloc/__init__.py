"""Detailed register allocation (paper, Section IV-F).

"We perform detailed register allocation using conventional graph
coloring algorithms.  We are guaranteed to be able to color each
register bank graph using the given number of registers because we have
analyzed the variable lifetimes in the instruction selection and
scheduling step."
"""

from repro.regalloc.liveness import LiveRange, compute_live_ranges
from repro.regalloc.interference import InterferenceGraph, build_interference_graphs
from repro.regalloc.coloring import color_graph
from repro.regalloc.allocator import RegisterAssignment, allocate_registers

__all__ = [
    "LiveRange",
    "compute_live_ranges",
    "InterferenceGraph",
    "build_interference_graphs",
    "color_graph",
    "RegisterAssignment",
    "allocate_registers",
]
