"""Chaitin-style graph coloring (paper, Section IV-F / reference [5]).

The classic simplify/select discipline: repeatedly remove a node with
fewer than ``k`` neighbours (it can always be colored later), then pop
the stack assigning each node the lowest color unused by its already-
colored neighbours.  Because the covering step bounded simultaneous
liveness per bank, every interference graph here is an interval graph
with max clique ≤ k, so simplification never gets stuck; if it ever did,
that would be a bug, reported as :class:`RegisterAllocationError`.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import RegisterAllocationError
from repro.regalloc.interference import InterferenceGraph


def color_graph(graph: InterferenceGraph) -> Dict[int, int]:
    """Color ``graph`` with at most ``graph.capacity`` colors.

    Returns node → color (register index).  Raises
    :class:`RegisterAllocationError` if no node of trivial degree exists
    at some step, which the covering invariant rules out.
    """
    k = graph.capacity
    remaining: Set[int] = set(graph.nodes)
    degrees: Dict[int, int] = {n: graph.degree(n) for n in graph.nodes}
    stack: List[int] = []
    while remaining:
        candidates = [n for n in sorted(remaining) if degrees[n] < k]
        if not candidates:
            raise RegisterAllocationError(
                f"bank {graph.bank}: no node with degree < {k}; the "
                f"liveness bound from covering was violated"
            )
        node = candidates[0]
        remaining.discard(node)
        stack.append(node)
        for neighbour in graph.neighbours(node):
            if neighbour in remaining:
                degrees[neighbour] -= 1
    colors: Dict[int, int] = {}
    for node in reversed(stack):
        used = {
            colors[n] for n in graph.neighbours(node) if n in colors
        }
        for color in range(k):
            if color not in used:
                colors[node] = color
                break
        else:
            raise RegisterAllocationError(
                f"bank {graph.bank}: node t{node} has all {k} colors "
                f"used by neighbours"
            )
    return colors
