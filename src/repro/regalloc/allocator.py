"""Driver producing a physical register assignment for a block solution."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.covering.solution import BlockSolution
from repro.regalloc.coloring import color_graph
from repro.regalloc.interference import build_interference_graphs
from repro.telemetry.session import current as _telemetry


@dataclass
class RegisterAssignment:
    """Physical register of every delivery, per bank.

    ``register_of[delivery_task_id] == index`` within the delivery's
    destination register file.
    """

    register_of: Dict[int, int] = field(default_factory=dict)
    used_per_bank: Dict[str, int] = field(default_factory=dict)

    def registers_used(self, bank: str) -> int:
        """Distinct physical registers used in ``bank``."""
        return self.used_per_bank.get(bank, 0)


def allocate_registers(solution: BlockSolution) -> RegisterAssignment:
    """Color every bank's interference graph.

    Guaranteed to succeed for schedules produced by the covering engine
    (the per-bank liveness upper bound was enforced during covering).
    """
    assignment = RegisterAssignment()
    tm = _telemetry()
    with tm.span("regalloc", category="regalloc"):
        for bank, graph in build_interference_graphs(solution).items():
            colors = color_graph(graph)
            assignment.register_of.update(colors)
            assignment.used_per_bank[bank] = (
                max(colors.values()) + 1 if colors else 0
            )
            tm.count("regalloc.coloring_attempts", 1)
        tm.count("regalloc.banks", len(assignment.used_per_bank))
        tm.count(
            "regalloc.registers_used",
            sum(assignment.used_per_bank.values()),
        )
    return assignment
