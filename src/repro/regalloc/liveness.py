"""Live ranges of register-resident values over a block schedule.

A delivery (task writing into a register file) defines a value at the
end of its cycle; the value dies when its last consumer executes.
Because operands are read before results are written, a value last used
in cycle ``t`` and a value defined in cycle ``t`` can share a register:
ranges are half-open intervals ``(def, last_use]``.

Pinned deliveries (branch conditions read by the control slot after the
block body) stay live through ``len(schedule)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.covering.solution import BlockSolution


@dataclass(frozen=True)
class LiveRange:
    """Lifetime of one delivery's value.

    The value occupies a register strictly after ``def_cycle`` up to and
    including ``last_use_cycle``.
    """

    delivery: int
    bank: str
    def_cycle: int
    last_use_cycle: int

    def overlaps(self, other: "LiveRange") -> bool:
        """Half-open interval intersection: (d1,u1] ∩ (d2,u2] ≠ ∅."""
        return (
            self.def_cycle < other.last_use_cycle
            and other.def_cycle < self.last_use_cycle
        )


def compute_live_ranges(solution: BlockSolution) -> Dict[int, LiveRange]:
    """Live range of every register delivery in the scheduled block."""
    graph = solution.graph
    cycle_of: Dict[int, int] = {}
    for cycle, members in enumerate(solution.schedule):
        for task_id in members:
            cycle_of[task_id] = cycle
    end_of_block = len(solution.schedule)
    ranges: Dict[int, LiveRange] = {}
    for delivery_id in graph.register_deliveries():
        if delivery_id not in cycle_of:
            continue  # deleted / unscheduled task (defensive)
        def_cycle = cycle_of[delivery_id]
        consumer_cycles = [
            cycle_of[c]
            for c in graph.consumers_of(delivery_id)
            if c in cycle_of
        ]
        if consumer_cycles:
            last_use = max(consumer_cycles)
        else:
            # A dead result is still physically written: it occupies a
            # register until its (possibly multi-cycle) write lands and
            # may be overwritten afterwards — the half-open range
            # (def, def + latency].
            last_use = def_cycle + graph.latency(delivery_id)
        if delivery_id in graph.pinned:
            last_use = max(last_use, end_of_block)
        ranges[delivery_id] = LiveRange(
            delivery=delivery_id,
            bank=graph.tasks[delivery_id].dest_storage,
            def_cycle=def_cycle,
            last_use_cycle=last_use,
        )
    return ranges


def pressure_profile(solution: BlockSolution) -> Dict[str, List[int]]:
    """Occupancy of each bank at the end of every cycle.

    ``profile[bank][t]`` counts values live in ``bank`` after cycle
    ``t`` executed.  Used by the peephole pass to decide whether a
    spill was actually necessary.
    """
    ranges = compute_live_ranges(solution)
    length = len(solution.schedule)
    profile: Dict[str, List[int]] = {
        rf.name: [0] * length for rf in solution.graph.machine.register_files
    }
    for live_range in ranges.values():
        for cycle in range(live_range.def_cycle, min(live_range.last_use_cycle, length)):
            profile[live_range.bank][cycle] += 1
    return profile
