"""Per-bank interference graphs over delivery live ranges."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.covering.solution import BlockSolution
from repro.regalloc.liveness import LiveRange, compute_live_ranges


@dataclass
class InterferenceGraph:
    """Undirected conflict graph of one register bank.

    Nodes are delivery task ids; an edge means the two values are live
    simultaneously and need distinct registers.
    """

    bank: str
    capacity: int
    nodes: List[int] = field(default_factory=list)
    edges: Dict[int, Set[int]] = field(default_factory=dict)

    def add_node(self, node: int) -> None:
        """Ensure ``node`` exists in the graph."""
        if node not in self.edges:
            self.nodes.append(node)
            self.edges[node] = set()

    def add_edge(self, a: int, b: int) -> None:
        """Add a conflict edge between two values."""
        if a == b:
            return
        self.add_node(a)
        self.add_node(b)
        self.edges[a].add(b)
        self.edges[b].add(a)

    def degree(self, node: int) -> int:
        """Number of conflicting neighbours."""
        return len(self.edges[node])

    def neighbours(self, node: int) -> Set[int]:
        """The set of values conflicting with ``node``."""
        return set(self.edges[node])

    def max_clique_lower_bound(self) -> int:
        """For interval graphs (which these are — live ranges on a line)
        the chromatic number equals the maximum overlap; this returns a
        cheap bound used in tests."""
        return max((self.degree(n) for n in self.nodes), default=0)


def build_interference_graphs(
    solution: BlockSolution,
) -> Dict[str, InterferenceGraph]:
    """One interference graph per register bank of the machine."""
    ranges = compute_live_ranges(solution)
    machine = solution.graph.machine
    graphs: Dict[str, InterferenceGraph] = {
        rf.name: InterferenceGraph(bank=rf.name, capacity=rf.size)
        for rf in machine.register_files
    }
    by_bank: Dict[str, List[LiveRange]] = {name: [] for name in graphs}
    for live_range in ranges.values():
        by_bank[live_range.bank].append(live_range)
    for bank, bank_ranges in by_bank.items():
        graph = graphs[bank]
        bank_ranges.sort(key=lambda r: (r.def_cycle, r.delivery))
        for i, first in enumerate(bank_ranges):
            graph.add_node(first.delivery)
            for second in bank_ranges[i + 1 :]:
                if first.overlaps(second):
                    graph.add_edge(first.delivery, second.delivery)
    return graphs
