"""Seeded candidate-machine populations for architecture exploration.

The paper's closing pitch is that a retargetable code generator turns
architecture design into a search problem: "by varying the machine
description and evaluating the resulting object code, the design space
of both hardware and software components can be effectively explored."
This module produces that variation deterministically: a population is
a pure function of ``(seed, size, base machines)``, built from two
streams —

- **parametric mutants** of the base machines (the eight bundled
  ``machines/*.isdl`` files by default), produced by a fixed registry
  of mutation operators: register-file scaling, unit removal and
  cloning, multi-cycle latencies, bus splits and shortcut buses, and
  ISDL "never" constraints;
- **free-form samples** from the fuzzer's machine generator
  (:func:`repro.fuzz.machgen.random_machine`), which reaches corners
  of the machine space no bundled description is near.

Every candidate is structurally valid (mutants that would not validate
are discarded and the operator retried), carries a unique name, and is
deduplicated by its name-independent ISDL text so the evaluator never
pays for the same datapath twice.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import MachineValidationError
from repro.isdl.model import (
    Bus,
    Constraint,
    ConstraintTerm,
    Machine,
    MachineOp,
    RegisterFile,
)
from repro.isdl.writer import machine_to_isdl
from repro.telemetry import current as _telemetry


@dataclass(frozen=True)
class ExploreCandidate:
    """One machine in the population.

    ``origin`` records provenance (``base:arch1``, ``mutant:arch1``,
    ``machgen``); ``area`` is the datapath area proxy the Pareto
    frontier uses as its hardware-cost axis.
    """

    name: str
    origin: str
    isdl: str
    area: int


def area_proxy(machine: Machine) -> int:
    """A deterministic integer proxy for datapath area.

    Functional units dominate (decode + datapath), registers and bus
    wiring cost per element, and every implemented operation adds
    control logic.  The absolute scale is arbitrary; only comparisons
    between candidates matter, so the weights just need to order "a
    third functional unit" above "two more registers".
    """
    operations = sum(len(unit.operations) for unit in machine.units)
    registers = sum(rf.size for rf in machine.register_files)
    wires = sum(len(bus.connects) for bus in machine.buses)
    return (
        16 * len(machine.units)
        + 4 * registers
        + 3 * len(machine.buses)
        + 2 * operations
        + wires
    )


def structure_fingerprint(machine: Machine) -> str:
    """The machine's ISDL text with the name normalised away — two
    candidates with the same fingerprint are the same datapath."""
    return machine_to_isdl(replace(machine, name="_"))


# ----------------------------------------------------------------------
# Mutation operators
# ----------------------------------------------------------------------
#
# Each operator takes (rng, machine) and returns a mutated Machine or
# ``None`` when the mutation does not apply (the driver then tries
# another operator).  Operators must consume rng deterministically and
# never mutate their input.

_REGISTER_SIZES = (2, 3, 4, 6, 8)


def _scale_register_files(rng: random.Random, machine: Machine) -> Optional[Machine]:
    """Re-size every register file to a sampled depth."""
    files = tuple(
        RegisterFile(rf.name, rng.choice(_REGISTER_SIZES))
        for rf in machine.register_files
    )
    if all(a.size == b.size for a, b in zip(files, machine.register_files)):
        return None
    return replace(machine, register_files=files)


def _drop_unit(rng: random.Random, machine: Machine) -> Optional[Machine]:
    """Remove one functional unit (the cheap-datapath question)."""
    if len(machine.units) < 2:
        return None
    victim = rng.choice(machine.units)
    units = tuple(u for u in machine.units if u.name != victim.name)
    constraints = tuple(
        c
        for c in machine.constraints
        if all(term.resource != victim.name for term in c.terms)
    )
    return replace(machine, units=units, constraints=constraints)


def _clone_unit(rng: random.Random, machine: Machine) -> Optional[Machine]:
    """Add a copy of one unit with a private register file (more ILP)."""
    source = rng.choice(machine.units)
    taken = set(machine.storage_names()) | set(machine.unit_names())
    taken |= set(machine.bus_names())
    number = len(machine.units) + 1
    while f"U{number}" in taken or f"RF{number}" in taken:
        number += 1
    unit_name, rf_name = f"U{number}", f"RF{number}"
    new_rf = RegisterFile(rf_name, machine.register_file(source.register_file).size)
    new_unit = replace(source, name=unit_name, register_file=rf_name)
    # Wire the new register file wherever the source's file is reachable
    # so the clone is actually usable.
    buses: List[Bus] = []
    wired = False
    for bus in machine.buses:
        if source.register_file in bus.connects:
            buses.append(Bus(bus.name, bus.connects + (rf_name,)))
            wired = True
        else:
            buses.append(bus)
    if not wired:
        buses.append(Bus(f"B{len(buses) + 1}", (machine.data_memory, rf_name)))
    return replace(
        machine,
        units=machine.units + (new_unit,),
        register_files=machine.register_files + (new_rf,),
        buses=tuple(buses),
    )


_SLOW_OPCODES = ("MUL", "DIV", "MOD", "MAC")


def _slow_multipliers(rng: random.Random, machine: Machine) -> Optional[Machine]:
    """Give multiply-class operations a multi-cycle latency."""
    latency = rng.choice((2, 3))
    changed = False
    units = []
    for unit in machine.units:
        ops: List[MachineOp] = []
        for op in unit.operations:
            if op.name in _SLOW_OPCODES and op.latency != latency:
                ops.append(replace(op, latency=latency))
                changed = True
            else:
                ops.append(op)
        units.append(replace(unit, operations=tuple(ops)))
    if not changed:
        return None
    return replace(machine, units=tuple(units))


def _split_bus(rng: random.Random, machine: Machine) -> Optional[Machine]:
    """Split one wide bus into two narrower buses sharing a pivot."""
    wide = [bus for bus in machine.buses if len(bus.connects) >= 4]
    if not wide:
        return None
    bus = rng.choice(wide)
    members = list(bus.connects)
    pivot = machine.data_memory if machine.data_memory in members else members[0]
    rest = [name for name in members if name != pivot]
    cut = rng.randint(1, len(rest) - 1)
    first = Bus(f"{bus.name}a", (pivot,) + tuple(rest[:cut]))
    second = Bus(f"{bus.name}b", (pivot,) + tuple(rest[cut:]))
    buses = tuple(
        replacement
        for b in machine.buses
        for replacement in ((first, second) if b.name == bus.name else (b,))
    )
    constraints = tuple(
        c
        for c in machine.constraints
        if all(term.resource != bus.name for term in c.terms)
    )
    return replace(machine, buses=buses, constraints=constraints)


def _shortcut_bus(rng: random.Random, machine: Machine) -> Optional[Machine]:
    """Add a redundant point-to-point bus (path diversity)."""
    storages = machine.storage_names()
    if len(storages) < 3:
        return None
    pair = tuple(sorted(rng.sample(storages, 2)))
    if any(set(pair) == set(bus.connects) for bus in machine.buses):
        return None
    name_number = len(machine.buses) + 1
    taken = set(machine.bus_names())
    while f"BX{name_number}" in taken:
        name_number += 1
    return replace(
        machine, buses=machine.buses + (Bus(f"BX{name_number}", pair),)
    )


def _add_never_constraint(rng: random.Random, machine: Machine) -> Optional[Machine]:
    """Forbid one cross-unit operation pairing (ISDL "never" rule)."""
    if len(machine.units) < 2:
        return None
    first, second = rng.sample(list(machine.units), 2)

    def term(unit) -> ConstraintTerm:
        if rng.random() < 0.5:
            return ConstraintTerm(unit.name, "*")
        return ConstraintTerm(unit.name, rng.choice(unit.operations).name)

    constraint = Constraint((term(first), term(second)))
    if any(str(constraint) == str(existing) for existing in machine.constraints):
        return None
    return replace(machine, constraints=machine.constraints + (constraint,))


#: The fixed, ordered operator registry — order is part of the
#: determinism contract (``rng.choice`` indexes into it).
MUTATION_OPERATORS: Tuple[Tuple[str, Callable], ...] = (
    ("scale_register_files", _scale_register_files),
    ("drop_unit", _drop_unit),
    ("clone_unit", _clone_unit),
    ("slow_multipliers", _slow_multipliers),
    ("split_bus", _split_bus),
    ("shortcut_bus", _shortcut_bus),
    ("add_never_constraint", _add_never_constraint),
)


def mutate_machine(
    rng: random.Random, machine: Machine, attempts: int = 8
) -> Optional[Tuple[str, Machine]]:
    """Apply one applicable mutation operator; ``None`` if none stuck."""
    for _ in range(attempts):
        op_name, operator = rng.choice(MUTATION_OPERATORS)
        try:
            mutated = operator(rng, machine)
        except MachineValidationError:
            mutated = None
        if mutated is not None:
            return op_name, mutated
    return None


# ----------------------------------------------------------------------
# Population driver
# ----------------------------------------------------------------------


def load_base_machines(machines_dir: Optional[str] = None) -> List[Machine]:
    """The population's seeds: every ``*.isdl`` in ``machines_dir``
    (sorted by file name), or the built-in machines when the directory
    is absent."""
    from pathlib import Path

    from repro.isdl.parser import parse_machine

    if machines_dir is not None:
        files = sorted(Path(machines_dir).glob("*.isdl"))
        if files:
            return [parse_machine(path.read_text()) for path in files]
    from repro.isdl.builtin_machines import BUILTIN_MACHINES

    return [BUILTIN_MACHINES[key]() for key in sorted(BUILTIN_MACHINES)]


def build_population(
    seed: int,
    size: int,
    bases: Optional[Sequence[Machine]] = None,
    machgen_share: float = 0.35,
) -> List[ExploreCandidate]:
    """The deterministic candidate population for one exploration run.

    The base machines come first (a designer always wants the current
    datapaths on the chart), then mutants and machgen samples
    interleave — ``machgen_share`` of the generated tail is sampled
    from the fuzzer's generator, the rest are parametric mutants.
    Candidates whose name-independent ISDL text duplicates an earlier
    candidate are skipped, so the returned population may briefly fall
    behind the requested size before fresh mutations catch up; the
    driver stops after a bounded number of consecutive duplicates.
    """
    from repro.fuzz.machgen import random_machine

    tm = _telemetry()
    rng = random.Random(seed)
    if bases is None:
        bases = load_base_machines()
    candidates: List[ExploreCandidate] = []
    seen: Dict[str, str] = {}

    def admit(machine: Machine, origin: str) -> bool:
        fingerprint = structure_fingerprint(machine)
        if fingerprint in seen:
            tm.count("explore.dedup_skips")
            return False
        seen[fingerprint] = machine.name
        candidates.append(
            ExploreCandidate(
                name=machine.name,
                origin=origin,
                isdl=machine_to_isdl(machine),
                area=area_proxy(machine),
            )
        )
        return True

    for base in bases:
        if len(candidates) >= size:
            break
        if admit(base, f"base:{base.name}"):
            tm.count("explore.base_candidates")

    serial = 0
    stale = 0
    while len(candidates) < size and stale < 64:
        serial += 1
        if rng.random() < machgen_share:
            machine = replace(random_machine(rng, serial), name=f"gen{serial}")
            if admit(machine, "machgen"):
                tm.count("explore.machgen_candidates")
                stale = 0
            else:
                stale += 1
            continue
        base = rng.choice(list(bases))
        mutation = mutate_machine(rng, base)
        if mutation is None:
            stale += 1
            continue
        op_name, mutated = mutation
        mutated = replace(mutated, name=f"{base.name}_x{serial}")
        if admit(mutated, f"mutant:{base.name}:{op_name}"):
            tm.count("explore.mutant_candidates")
            stale = 0
        else:
            stale += 1
    tm.count("explore.candidates", len(candidates))
    return candidates
