"""Architecture exploration: the machine space as a workload.

``repro explore`` turns the serial :mod:`repro.eval.sweeps` helpers
into a parallel service: generate a seeded population of machine
variants (:mod:`repro.explore.population`), evaluate each against a
workload suite through the process pool and persistent block cache
(:mod:`repro.explore.evaluate`), rank by the schedule-quality axes,
and emit the deterministic Pareto-frontier artifact
``BENCH_explore.json`` (:mod:`repro.explore.service`).  See
``docs/exploration.md``.
"""

from repro.explore.evaluate import (
    corpus_workloads,
    default_workloads,
    evaluate_candidate,
    make_payloads,
    tighten_candidate,
)
from repro.explore.pareto import dominates, pareto_frontier
from repro.explore.population import (
    ExploreCandidate,
    MUTATION_OPERATORS,
    area_proxy,
    build_population,
    load_base_machines,
    mutate_machine,
    structure_fingerprint,
)
from repro.explore.service import (
    AXES,
    EXPLORE_SCHEMA,
    candidate_vector,
    explore_report_bytes,
    format_explore_table,
    run_explore,
    validate_explore_report,
    write_explore_report,
)

__all__ = [
    "AXES",
    "EXPLORE_SCHEMA",
    "ExploreCandidate",
    "MUTATION_OPERATORS",
    "area_proxy",
    "build_population",
    "candidate_vector",
    "corpus_workloads",
    "default_workloads",
    "dominates",
    "evaluate_candidate",
    "explore_report_bytes",
    "format_explore_table",
    "load_base_machines",
    "make_payloads",
    "mutate_machine",
    "pareto_frontier",
    "run_explore",
    "structure_fingerprint",
    "tighten_candidate",
    "validate_explore_report",
    "write_explore_report",
]
