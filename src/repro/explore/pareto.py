"""Pareto-dominance over candidate cost vectors.

The exploration service ranks machines on several axes at once
(datapath area proxy, total code size, lower-bound gap); no single
scalar orders them, so the artifact reports the **Pareto frontier**:
every candidate not dominated by another.  Dominance is the standard
weak-dominance relation — at least as good everywhere, strictly better
somewhere; candidates with *identical* vectors do not dominate each
other, so exact ties all stay on the frontier (a designer wants to see
both machines, they are different datapaths at the same cost point).

Vectors may be ``None`` (a candidate that failed to compile part of
the suite has no comparable cost): such candidates never dominate and
are never on the frontier, but remain in the report with their failure
counts — Castañeda Lozano & Schulte's survey motivates ranking by
lower-bound gap only where the evaluation actually closed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

Vector = Tuple[float, ...]


def dominates(first: Sequence[float], second: Sequence[float]) -> bool:
    """True when ``first`` weakly dominates ``second`` (<= on every
    axis, < on at least one).  Identical vectors dominate neither way."""
    if len(first) != len(second):
        raise ValueError(
            f"cost vectors must share axes: {len(first)} vs {len(second)}"
        )
    strictly_better = False
    for a, b in zip(first, second):
        if a > b:
            return False
        if a < b:
            strictly_better = True
    return strictly_better


def pareto_frontier(
    vectors: Dict[str, Optional[Sequence[float]]],
) -> List[str]:
    """Names of the non-dominated candidates.

    ``vectors`` maps candidate name to its cost vector (or ``None`` for
    failed candidates, which are excluded).  The result is sorted by
    cost vector then name, so it is deterministic regardless of dict
    insertion order.
    """
    comparable = {
        name: tuple(vector)
        for name, vector in vectors.items()
        if vector is not None
    }
    frontier = [
        name
        for name, vector in comparable.items()
        if not any(
            dominates(other, vector)
            for other_name, other in comparable.items()
            if other_name != name
        )
    ]
    return sorted(frontier, key=lambda name: (comparable[name], name))
