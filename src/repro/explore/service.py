"""The architecture-exploration service: ``run_explore``.

Orchestrates the full loop the paper's introduction sketches —
generate machine variants, compile a workload suite on each, rank, and
report — as one deterministic, parallel pipeline:

1. **Population** (:mod:`repro.explore.population`): a seeded stream of
   base machines, parametric mutants, and machgen samples.
2. **Evaluation** (:mod:`repro.explore.evaluate`): every candidate
   compiles the whole suite, fanned across a ``ProcessPoolExecutor``
   (``workers > 0``) with all workers sharing one persistent block
   cache; ``workers = 0`` evaluates in-process.  ``pool.map`` keeps
   candidate order, and compilation itself is deterministic, so the
   result stream is identical for any worker count.
3. **Optional tightening**: with ``budget > 0``, frontier candidates'
   small gapped workloads are re-solved by the optimal backend
   (:mod:`repro.optimal`) to label how much of each gap is heuristic
   slack vs intrinsic; the frontier axes stay on the heuristic numbers.
4. **Artifact**: the ``repro/bench-explore/v1`` payload — candidates,
   per-workload records, and the Pareto frontier over
   ``(area, instructions, gap)``.  The payload carries **no wall-clock
   or worker-count data**, so a fixed seed reproduces it byte for byte
   across machines and ``--workers`` settings; timing is returned
   separately for the CLI to print.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.explore.evaluate import (
    default_workloads,
    evaluate_candidate,
    make_payloads,
    tighten_candidate,
)
from repro.explore.pareto import dominates, pareto_frontier
from repro.explore.population import ExploreCandidate, build_population
from repro.telemetry import current as _telemetry

#: Versioned envelope of the exploration artifact.
EXPLORE_SCHEMA = "repro/bench-explore/v1"

#: The frontier's cost axes, all minimised, in vector order.
AXES: Tuple[str, ...] = ("area", "instructions", "gap")

#: Blocks above this task count are not worth an exact re-solve under a
#: smoke-sized conflict budget (the optimal backend's frontier).
TIGHTEN_TASK_LIMIT = 24


def candidate_vector(record: Dict[str, Any]) -> Optional[Tuple[float, ...]]:
    """The candidate's frontier cost vector, or ``None`` when any
    workload failed (no comparable total exists)."""
    if record["failures"]:
        return None
    metrics = record["metrics"]
    return (record["area"], metrics["instructions"], metrics["gap"])


def _aggregate(candidate: ExploreCandidate, evaluation: Dict[str, Any]) -> Dict[str, Any]:
    """Fold per-workload records into one candidate artifact record."""
    instructions = spills = cycles = tasks = lower = gap = 0
    failures = 0
    for record in evaluation["workloads"]:
        if record["status"] != "ok":
            failures += 1
            continue
        metrics = record["metrics"]
        instructions += metrics["instructions"]
        spills += metrics["spills"]
        cycles += metrics["cycles"]
        tasks += metrics["tasks"]
        lower += metrics["lower_bound"]
        gap += metrics["gap"]
    evaluated = len(evaluation["workloads"]) - failures
    return {
        "name": candidate.name,
        "origin": candidate.origin,
        "area": candidate.area,
        "failures": failures,
        "workloads_ok": evaluated,
        "metrics": {
            "instructions": instructions,
            "spills": spills,
            "cycles": cycles,
            "tasks": tasks,
            "lower_bound": lower,
            "gap": gap,
            "ipc": round(tasks / cycles, 4) if cycles else 0.0,
        },
        "workloads": evaluation["workloads"],
        "optimal": None,
        "frontier": False,
    }


def run_explore(
    seed: int = 0,
    population: int = 50,
    workers: int = 0,
    budget: int = 0,
    workloads: Optional[Sequence[Tuple[str, str]]] = None,
    bases: Optional[Sequence[Any]] = None,
    cache_dir: Optional[str] = None,
    machgen_share: float = 0.35,
    config: Optional[Dict[str, Any]] = None,
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Run one exploration; returns ``(payload, timing)``.

    ``payload`` is the deterministic ``repro/bench-explore/v1``
    artifact; ``timing`` holds the wall-clock and worker-count facts
    that must stay *out* of the artifact for it to be bit-reproducible
    across worker counts.
    """
    tm = _telemetry()
    started = time.perf_counter()
    suite = list(workloads) if workloads is not None else default_workloads(".")
    if not suite:
        raise ValueError("exploration needs at least one workload")

    with tm.span("explore.population", category="explore"):
        candidates = build_population(
            seed, population, bases=bases, machgen_share=machgen_share
        )
    payloads = make_payloads(candidates, suite, config=config)

    with tm.span("explore.evaluate", category="explore"):
        evaluations = _map_candidates(payloads, workers, cache_dir)
    tm.count("explore.evaluations", len(evaluations))

    records = [
        _aggregate(candidate, evaluation)
        for candidate, evaluation in zip(candidates, evaluations)
    ]
    failures = sum(r["failures"] for r in records)
    tm.count(
        "explore.workloads_ok", sum(r["workloads_ok"] for r in records)
    )
    tm.count("explore.workload_failures", failures)

    vectors = {record["name"]: candidate_vector(record) for record in records}
    frontier_names = pareto_frontier(vectors)
    by_name = {record["name"]: record for record in records}
    for name in frontier_names:
        by_name[name]["frontier"] = True
    tm.count("explore.frontier_size", len(frontier_names))

    if budget > 0:
        with tm.span("explore.tighten", category="explore"):
            _tighten_frontier(
                by_name, frontier_names, candidates, suite, budget,
                workers, config,
            )

    isdl_by_name = {c.name: c.isdl for c in candidates}
    frontier = [
        {
            "name": name,
            "origin": by_name[name]["origin"],
            "area": by_name[name]["area"],
            "instructions": by_name[name]["metrics"]["instructions"],
            "gap": by_name[name]["metrics"]["gap"],
            "ipc": by_name[name]["metrics"]["ipc"],
            "isdl": isdl_by_name[name],
        }
        for name in frontier_names
    ]
    payload = {
        "schema": EXPLORE_SCHEMA,
        "meta": {
            "seed": seed,
            "population": len(records),
            "requested_population": population,
            "budget": budget,
            "machgen_share": machgen_share,
            "axes": list(AXES),
            "workloads": [name for name, _source in suite],
        },
        "candidates": records,
        "frontier": frontier,
        "totals": {
            "candidates": len(records),
            "frontier": len(frontier),
            "workload_failures": failures,
            "workloads_ok": sum(r["workloads_ok"] for r in records),
        },
    }
    # Fleet-level metrics ride the *timing* side channel, never the
    # artifact: per-candidate snapshots merge associatively, so the
    # fleet view is identical for any worker count, but the artifact
    # stays the byte-reproducible document it always was.
    from repro.obs.metrics import MetricsSnapshot

    fleet = MetricsSnapshot.merge(
        MetricsSnapshot.from_dict(evaluation["obs"])
        for evaluation in evaluations
        if isinstance(evaluation.get("obs"), dict)
    )
    fleet.set_gauge("obs.frontier_size", float(len(frontier)))
    fleet.set_gauge("obs.workers", float(workers))
    timing = {
        "wall_s": time.perf_counter() - started,
        "workers": workers,
        "evaluations": len(records) * len(suite),
        "obs": fleet,
    }
    return payload, timing


def _map_candidates(
    payloads: List[Dict[str, Any]],
    workers: int,
    cache_dir: Optional[str],
) -> List[Dict[str, Any]]:
    """Evaluate payloads in order, pooled or in-process."""
    if workers > 0:
        from concurrent.futures import ProcessPoolExecutor
        from functools import partial

        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(
                pool.map(
                    partial(evaluate_candidate, cache_dir=cache_dir),
                    payloads,
                )
            )
    return [evaluate_candidate(payload, cache_dir) for payload in payloads]


def _tighten_frontier(
    by_name: Dict[str, Dict[str, Any]],
    frontier_names: List[str],
    candidates: Sequence[ExploreCandidate],
    suite: Sequence[Tuple[str, str]],
    budget: int,
    workers: int,
    config: Optional[Dict[str, Any]],
) -> None:
    """Annotate frontier candidates with exact small-block gap labels."""
    tm = _telemetry()
    sources = dict(suite)
    isdl_by_name = {c.name: c.isdl for c in candidates}
    payloads = []
    for name in frontier_names:
        record = by_name[name]
        worthwhile = [
            {"name": wl["workload"], "source": sources[wl["workload"]]}
            for wl in record["workloads"]
            if wl["status"] == "ok"
            and wl["metrics"]["gap"] > 0
            and wl["metrics"]["max_block_tasks"] <= TIGHTEN_TASK_LIMIT
        ]
        if worthwhile:
            payloads.append(
                {
                    "name": name,
                    "isdl": isdl_by_name[name],
                    "workloads": worthwhile,
                    "config": dict(config or {}),
                }
            )
    if not payloads:
        return
    if workers > 0:
        from concurrent.futures import ProcessPoolExecutor
        from functools import partial

        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(
                pool.map(partial(tighten_candidate, budget=budget), payloads)
            )
    else:
        results = [tighten_candidate(payload, budget) for payload in payloads]
    for result in results:
        tightened = {
            "budget": budget,
            "workloads": result["workloads"],
        }
        by_name[result["name"]]["optimal"] = tightened
        tm.count("explore.tightened_workloads", len(result["workloads"]))
        for record in result["workloads"]:
            if record["status"] == "ok":
                tm.count(
                    "explore.gap_cycles_closed",
                    record["heuristic_cycles"] - record["optimal_cycles"],
                )


# ----------------------------------------------------------------------
# Artifact validation / IO / rendering
# ----------------------------------------------------------------------


def validate_explore_report(payload: Any) -> None:
    """Raise :class:`ValueError` unless ``payload`` is a well-formed
    ``repro/bench-explore/v1`` artifact (including frontier honesty:
    members are failure-free and mutually non-dominated)."""
    if not isinstance(payload, dict):
        raise ValueError("explore report must be a JSON object")
    if payload.get("schema") != EXPLORE_SCHEMA:
        raise ValueError(
            f"explore report schema must be {EXPLORE_SCHEMA!r}, "
            f"got {payload.get('schema')!r}"
        )
    meta = payload.get("meta")
    if not isinstance(meta, dict):
        raise ValueError("explore report needs a 'meta' object")
    for key in ("seed", "population", "budget"):
        if not isinstance(meta.get(key), int):
            raise ValueError(f"meta: {key!r} must be an int")
    if meta.get("axes") != list(AXES):
        raise ValueError(f"meta: 'axes' must be {list(AXES)}")
    if not isinstance(meta.get("workloads"), list) or not meta["workloads"]:
        raise ValueError("meta: needs a non-empty 'workloads' list")
    candidates = payload.get("candidates")
    if not isinstance(candidates, list) or not candidates:
        raise ValueError("explore report needs a non-empty 'candidates' list")
    names = set()
    for position, record in enumerate(candidates):
        where = f"candidate #{position}"
        if not isinstance(record, dict):
            raise ValueError(f"{where} is not an object")
        name = record.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError(f"{where}: missing string 'name'")
        if name in names:
            raise ValueError(f"{where}: duplicate candidate name {name!r}")
        names.add(name)
        for key in ("area", "failures", "workloads_ok"):
            if not isinstance(record.get(key), int) or record[key] < 0:
                raise ValueError(
                    f"{where}: {key!r} must be a non-negative int"
                )
        metrics = record.get("metrics")
        if not isinstance(metrics, dict):
            raise ValueError(f"{where}: missing 'metrics'")
        for key in ("instructions", "spills", "cycles", "gap"):
            if not isinstance(metrics.get(key), int) or metrics[key] < 0:
                raise ValueError(
                    f"{where}: metrics.{key} must be a non-negative int"
                )
        workloads = record.get("workloads")
        if not isinstance(workloads, list) or len(workloads) != len(
            meta["workloads"]
        ):
            raise ValueError(
                f"{where}: needs one workload record per suite member"
            )
        for wl in workloads:
            if wl.get("status") not in WORKLOAD_STATUSES_:
                raise ValueError(
                    f"{where}: bad workload status {wl.get('status')!r}"
                )
            if wl["status"] == "ok" and not isinstance(wl.get("metrics"), dict):
                raise ValueError(f"{where}: ok workload needs metrics")
            if wl["status"] != "ok" and not isinstance(wl.get("error"), str):
                raise ValueError(f"{where}: failed workload needs 'error'")
    frontier = payload.get("frontier")
    if not isinstance(frontier, list):
        raise ValueError("explore report needs a 'frontier' list")
    by_name = {record["name"]: record for record in candidates}
    vectors = []
    for position, member in enumerate(frontier):
        where = f"frontier #{position}"
        if not isinstance(member, dict):
            raise ValueError(f"{where} is not an object")
        name = member.get("name")
        if name not in by_name:
            raise ValueError(f"{where}: unknown candidate {name!r}")
        record = by_name[name]
        if record["failures"]:
            raise ValueError(
                f"{where}: {name!r} failed {record['failures']} workload(s) "
                f"and cannot be on the frontier"
            )
        if not record.get("frontier"):
            raise ValueError(f"{where}: {name!r} not flagged as frontier")
        if not isinstance(member.get("isdl"), str) or not member["isdl"]:
            raise ValueError(f"{where}: missing machine 'isdl' text")
        vectors.append(
            (name, (member["area"], member["instructions"], member["gap"]))
        )
    for name, vector in vectors:
        for other_name, other in vectors:
            if other_name != name and dominates(other, vector):
                raise ValueError(
                    f"frontier member {name!r} is dominated by "
                    f"{other_name!r} — not a Pareto frontier"
                )
    totals = payload.get("totals")
    if not isinstance(totals, dict):
        raise ValueError("explore report needs a 'totals' object")
    if totals.get("candidates") != len(candidates):
        raise ValueError("totals: 'candidates' disagrees with the list")
    if totals.get("frontier") != len(frontier):
        raise ValueError("totals: 'frontier' disagrees with the list")


#: Mirrors :data:`repro.explore.evaluate.WORKLOAD_STATUSES` without the
#: import cycle at validation time.
WORKLOAD_STATUSES_ = ("ok", "coverage_error", "error")


def explore_report_bytes(payload: Dict[str, Any]) -> bytes:
    """The canonical byte serialization (what determinism tests compare
    and ``write_explore_report`` writes)."""
    return (
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    ).encode("utf-8")


def write_explore_report(path: str, payload: Dict[str, Any]) -> None:
    """Validate and write a ``BENCH_explore.json`` artifact."""
    validate_explore_report(payload)
    with open(path, "wb") as handle:
        handle.write(explore_report_bytes(payload))


def format_explore_table(payload: Dict[str, Any], top: int = 12) -> str:
    """Human-readable summary: the frontier plus the closest also-rans."""
    lines = [
        f"explored {payload['totals']['candidates']} machine(s), "
        f"{payload['totals']['workload_failures']} workload failure(s); "
        f"frontier holds {payload['totals']['frontier']}"
    ]
    lines.append("")
    lines.append(
        f"{'machine':24s} {'origin':28s} {'area':>6s} {'instr':>6s} "
        f"{'gap':>4s} {'ipc':>6s}  frontier"
    )
    ranked = sorted(
        payload["candidates"],
        key=lambda r: (
            not r["frontier"],
            r["failures"] > 0,
            r["metrics"]["instructions"] if not r["failures"] else 0,
            r["area"],
            r["name"],
        ),
    )
    for record in ranked[:top]:
        metrics = record["metrics"]
        if record["failures"]:
            cost = f"{'fail':>6s} {'-':>4s} {'-':>6s}"
        else:
            cost = (
                f"{metrics['instructions']:6d} {metrics['gap']:4d} "
                f"{metrics['ipc']:6.2f}"
            )
        marker = "*" if record["frontier"] else ""
        lines.append(
            f"{record['name']:24.24s} {record['origin']:28.28s} "
            f"{record['area']:6d} {cost}  {marker}"
        )
    if len(payload["candidates"]) > top:
        lines.append(f"... {len(payload['candidates']) - top} more")
    return "\n".join(lines)
