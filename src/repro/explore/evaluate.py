"""Candidate evaluation: one machine against the workload suite.

``evaluate_candidate`` is the unit of work the exploration service fans
out across its process pool: module-level and dict-in/dict-out so a
``ProcessPoolExecutor`` can pickle it, with imports inside so pool
workers pay them once (the same discipline as
:func:`repro.serve.service.execute_job`).  Every compile goes through
the persistent block cache when ``cache_dir`` is given, so re-exploring
a neighbourhood of the machine space is warm.

A workload record carries the schedule-quality metrics the ranking
axes need — code size, spills, per-block cycles against the
critical-path/resource lower bound (the *gap*), IPC, and per-resource
slot utilization — aggregated over the function's blocks from
:func:`repro.explain.quality.quality_report`.  Failures are data
points, not errors: a machine that cannot cover a workload records a
``coverage_error`` status and stays in the population.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Statuses an evaluation can report per workload.
WORKLOAD_STATUSES = ("ok", "coverage_error", "error")


def default_workloads(repo_root: Optional[str] = None) -> List[Tuple[str, str]]:
    """The default ``(name, minic source)`` suite.

    Always contains the paper's Table I/II blocks (Ex1–Ex5, inlined
    from :mod:`repro.eval.workloads` so no file access is needed); when
    ``repo_root`` holds an ``examples/`` directory, the bundled DSP
    loop kernels ride along.  ``branchy`` is deliberately excluded: it
    needs comparison opcodes most candidate machines lack, which would
    disqualify nearly the whole population from the frontier — add it
    explicitly when exploring control-flow-capable machine families.
    """
    from pathlib import Path

    from repro.eval.workloads import WORKLOADS

    suite: List[Tuple[str, str]] = [(w.name, w.source) for w in WORKLOADS]
    if repo_root is not None:
        for name in ("dotprod", "fir4"):
            path = Path(repo_root) / "examples" / f"{name}.minic"
            if path.exists():
                suite.append((name, path.read_text()))
    return suite


def corpus_workloads(corpus_dir: str) -> List[Tuple[str, str]]:
    """The frozen fuzz corpus as extra workloads (constraint-dense
    programs the fuzzer already found interesting)."""
    from pathlib import Path

    from repro.fuzz.corpus import load_case

    suite: List[Tuple[str, str]] = []
    for path in sorted(Path(corpus_dir).glob("*.json")):
        case = load_case(path)
        suite.append((path.stem, case.source))
    return suite


def evaluate_candidate(
    payload: Dict[str, Any], cache_dir: Optional[str] = None
) -> Dict[str, Any]:
    """Evaluate one candidate dict against its workload suite.

    ``payload`` is self-contained: ``{"name", "isdl", "workloads":
    [{"name", "source"}, ...], "config": {...}}`` — a worker process
    never depends on the parent's object graph.  Returns the candidate
    result with one record per workload, in suite order, plus an
    ``"obs"`` service-metrics snapshot the pool parent merges into the
    fleet view (:func:`repro.explore.service.run_explore` keeps it out
    of the byte-reproducible artifact).
    """
    from repro.asmgen.program import compile_function
    from repro.covering.config import HeuristicConfig
    from repro.errors import CoverageError, ReproError
    from repro.explain.quality import quality_report
    from repro.frontend import compile_source
    from repro.isdl.parser import parse_machine
    from repro.obs.metrics import MetricsRegistry, use_registry

    result: Dict[str, Any] = {
        "name": payload["name"],
        "workloads": [],
    }
    registry = MetricsRegistry()
    registry.count("obs.candidates_total")
    machine = parse_machine(payload["isdl"])
    config = HeuristicConfig.default().with_(**payload.get("config", {}))
    for workload in payload["workloads"]:
        record: Dict[str, Any] = {
            "workload": workload["name"],
            "status": "ok",
            "error": None,
            "metrics": None,
        }
        registry.count("obs.workloads_total")
        try:
            function = compile_source(workload["source"])
            with use_registry(registry):
                compiled = compile_function(
                    function, machine, config, cache_dir=cache_dir
                )
        except CoverageError as error:
            record["status"] = "coverage_error"
            record["error"] = str(error)
        except ReproError as error:
            record["status"] = "error"
            record["error"] = str(error)
        except Exception as error:  # noqa: BLE001 - reported, not swallowed
            record["status"] = "error"
            record["error"] = f"{type(error).__name__}: {error}"
        else:
            record["metrics"] = _workload_metrics(compiled, quality_report)
        if record["status"] == "ok":
            registry.count("obs.workloads_ok")
            registry.observe(
                "obs.request_instructions", record["metrics"]["instructions"]
            )
            registry.observe(
                "obs.request_spills", record["metrics"]["spills"]
            )
        else:
            registry.count("obs.workloads_failed")
        result["workloads"].append(record)
    result["obs"] = registry.snapshot().to_dict()
    return result


def _workload_metrics(compiled, quality_report) -> Dict[str, Any]:
    """Aggregate per-block quality reports into one workload record."""
    machine = compiled.machine
    cycles = tasks = lower = gap = 0
    busy: Dict[str, float] = {
        name: 0.0 for name in machine.unit_names() + machine.bus_names()
    }
    block_tasks: List[int] = []
    for name in sorted(compiled.blocks):
        block = compiled.blocks[name]
        quality = quality_report(block.solution)
        cycles += quality["cycles"]
        tasks += quality["tasks"]
        lower += quality["lower_bound"]
        gap += quality["schedule_overhead"]
        block_tasks.append(quality["tasks"])
        for resource, fraction in quality["slot_utilization"].items():
            if resource in busy:
                busy[resource] += fraction * quality["cycles"]
    utilization = {
        resource: round(total / cycles, 4) if cycles else 0.0
        for resource, total in sorted(busy.items())
    }
    return {
        "instructions": compiled.total_instructions,
        "body_instructions": compiled.body_instructions,
        "spills": compiled.total_spills,
        "blocks": len(compiled.blocks),
        "cycles": cycles,
        "tasks": tasks,
        "lower_bound": lower,
        "gap": gap,
        "max_block_tasks": max(block_tasks) if block_tasks else 0,
        "ipc": round(tasks / cycles, 4) if cycles else 0.0,
        "utilization": utilization,
    }


def tighten_candidate(
    payload: Dict[str, Any],
    budget: int,
    cache_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Re-solve a candidate's gapped workloads with the optimal backend.

    ``payload`` carries only the workloads worth the effort (the
    service pre-filters to small-block workloads with a nonzero
    heuristic gap).  Returns per-workload optimal block-length sums and
    whether every block's minimality proof closed inside ``budget``
    conflicts — annotation for the artifact; the frontier axes stay on
    the heuristic numbers, so a bigger budget never changes the
    frontier, only how honestly its gaps are labelled.
    """
    from repro.asmgen.program import compile_function
    from repro.covering.config import HeuristicConfig
    from repro.errors import ReproError
    from repro.frontend import compile_source
    from repro.isdl.parser import parse_machine

    machine = parse_machine(payload["isdl"])
    config = HeuristicConfig.default().with_(**payload.get("config", {}))
    result: Dict[str, Any] = {"name": payload["name"], "workloads": []}
    for workload in payload["workloads"]:
        record: Dict[str, Any] = {
            "workload": workload["name"],
            "status": "ok",
            "optimal_cycles": 0,
            "heuristic_cycles": 0,
            "proven": True,
        }
        try:
            function = compile_source(workload["source"])
            compiled = compile_function(
                function,
                machine,
                config,
                cache_dir=None,  # optimal solves are never cached
                backend="optimal",
                conflict_budget=budget,
            )
        except ReproError as error:
            record["status"] = "error"
            record["error"] = str(error)
        except Exception as error:  # noqa: BLE001 - reported, not swallowed
            record["status"] = "error"
            record["error"] = f"{type(error).__name__}: {error}"
        else:
            for name in sorted(compiled.blocks):
                solve = compiled.blocks[name].optimal
                if solve is None:
                    continue
                record["optimal_cycles"] += solve.cost
                record["heuristic_cycles"] += solve.heuristic_cost
                record["proven"] = record["proven"] and solve.proven
        result["workloads"].append(record)
    return result


def make_payloads(
    candidates: Sequence[Any],
    workloads: Sequence[Tuple[str, str]],
    config: Optional[Dict[str, Any]] = None,
) -> List[Dict[str, Any]]:
    """Self-contained evaluation payloads, one per candidate."""
    suite = [{"name": name, "source": source} for name, source in workloads]
    return [
        {
            "name": candidate.name,
            "isdl": candidate.isdl,
            "workloads": suite,
            "config": dict(config or {}),
        }
        for candidate in candidates
    ]
