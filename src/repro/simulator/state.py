"""Architectural state of a simulated machine."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.ir.arith import wrap
from repro.isdl.model import Machine
from repro.asmgen.instruction import Location, MemRef, RegRef


class MachineState:
    """Register files, memories, and the program counter."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.registers: Dict[str, List[int]] = {
            rf.name: [0] * rf.size for rf in machine.register_files
        }
        self.memories: Dict[str, List[int]] = {
            m.name: [0] * m.size for m in machine.memories
        }
        self.pc = 0
        self.cycle = 0
        self.halted = False

    # -- typed accessors ---------------------------------------------------

    def read(self, location: Location) -> int:
        """Read a register or memory location."""
        if isinstance(location, RegRef):
            return self.read_register(location.register_file, location.index)
        return self.read_memory(location.memory, location.address)

    def write(self, location: Location, value: int) -> None:
        """Write a register or memory location (word-wrapped)."""
        if isinstance(location, RegRef):
            self.write_register(location.register_file, location.index, value)
        else:
            self.write_memory(location.memory, location.address, value)

    def read_register(self, register_file: str, index: int) -> int:
        """Read one register by file name and index."""
        bank = self._bank(register_file)
        self._check_index(register_file, index, len(bank))
        return bank[index]

    def write_register(self, register_file: str, index: int, value: int) -> None:
        """Write one register (value wrapped to a word)."""
        bank = self._bank(register_file)
        self._check_index(register_file, index, len(bank))
        bank[index] = wrap(value)

    def read_memory(self, memory: str, address: int) -> int:
        """Read one memory word by address."""
        cells = self._memory(memory)
        self._check_index(memory, address, len(cells))
        return cells[address]

    def write_memory(self, memory: str, address: int, value: int) -> None:
        """Write one memory word (value wrapped)."""
        cells = self._memory(memory)
        self._check_index(memory, address, len(cells))
        cells[address] = wrap(value)

    def _bank(self, register_file: str) -> List[int]:
        try:
            return self.registers[register_file]
        except KeyError:
            raise SimulationError(
                f"no register file {register_file!r} on {self.machine.name}"
            ) from None

    def _memory(self, memory: str) -> List[int]:
        try:
            return self.memories[memory]
        except KeyError:
            raise SimulationError(
                f"no memory {memory!r} on {self.machine.name}"
            ) from None

    @staticmethod
    def _check_index(name: str, index: int, size: int) -> None:
        if not 0 <= index < size:
            raise SimulationError(
                f"{name}: index {index} out of range [0, {size})"
            )

    def load_data(self, data: Dict[int, int], memory: Optional[str] = None) -> None:
        """Initialise memory contents (constant pool, variables)."""
        memory = memory or self.machine.data_memory
        for address, value in data.items():
            self.write_memory(memory, address, value)
