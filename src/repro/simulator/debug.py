"""An interactive-style stepping debugger over the simulator.

Wraps the executor with breakpoints (labels or addresses), single-step
and run-to-break control, and register/memory inspection — the kind of
harness an ASIP designer uses to examine generated code cycle by cycle.

    debugger = Debugger(program, machine, initial={"x": 5})
    debugger.add_breakpoint("loop")
    debugger.run()                   # stops at 'loop' (or halt)
    debugger.registers("RF1")        # -> [.., ..]
    debugger.step()                  # one instruction
    debugger.variable("acc")         # read data memory by symbol
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.isdl.model import Machine
from repro.asmgen.instruction import Program
from repro.simulator.executor import execute_instruction
from repro.simulator.state import MachineState


class Debugger:
    """Step-wise execution of a program with breakpoints."""

    def __init__(
        self,
        program: Program,
        machine: Machine,
        initial: Optional[Dict[str, int]] = None,
    ):
        if program.machine_name != machine.name:
            raise SimulationError(
                f"program targets {program.machine_name!r}, "
                f"machine is {machine.name!r}"
            )
        self.program = program
        self.machine = machine
        self.state = MachineState(machine)
        self.state.load_data(program.data)
        for name, value in (initial or {}).items():
            if name in program.symbols:
                self.state.write_memory(
                    machine.data_memory, program.symbols[name], value
                )
        self._breakpoints: Set[int] = set()
        self._write_queue: List[Tuple[int, object, int]] = []
        self.history: List[str] = []

    # -- breakpoints -------------------------------------------------------

    def add_breakpoint(self, where) -> int:
        """Set a breakpoint at a label name or instruction address;
        returns the resolved address."""
        address = self._resolve(where)
        self._breakpoints.add(address)
        return address

    def clear_breakpoint(self, where) -> None:
        """Remove a breakpoint set at a label or address."""
        self._breakpoints.discard(self._resolve(where))

    def _resolve(self, where) -> int:
        if isinstance(where, int):
            if not 0 <= where <= len(self.program.instructions):
                raise SimulationError(f"address {where} out of range")
            return where
        if where in self.program.labels:
            return self.program.labels[where]
        raise SimulationError(f"unknown label {where!r}")

    # -- execution ---------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True once the program halted or ran off the end."""
        return self.state.halted or self.state.pc >= len(
            self.program.instructions
        )

    def step(self) -> bool:
        """Execute one instruction; returns False when finished."""
        if self.finished:
            return False
        if self._write_queue:
            due = [w for w in self._write_queue if w[0] <= self.state.cycle]
            for _cycle, destination, value in due:
                self.state.write(destination, value)
            self._write_queue = [
                w for w in self._write_queue if w[0] > self.state.cycle
            ]
        instruction = self.program.instructions[self.state.pc]
        self.history.append(
            f"{self.state.cycle:5d} @{self.state.pc:4d}: {instruction}"
        )
        self.state.pc = execute_instruction(
            instruction, self.state, self.program.labels, self._write_queue
        )
        self.state.cycle += 1
        return not self.finished

    def run(self, max_cycles: int = 1_000_000) -> str:
        """Run until a breakpoint, halt, or the cycle budget.

        Returns ``"breakpoint"``, ``"halted"``, or raises on livelock.
        """
        start = self.state.cycle
        while not self.finished:
            if self.state.cycle - start >= max_cycles:
                raise SimulationError(
                    f"exceeded {max_cycles} cycles without halting"
                )
            self.step()
            if self.state.pc in self._breakpoints and not self.finished:
                return "breakpoint"
        for _cycle, destination, value in self._write_queue:
            self.state.write(destination, value)
        self._write_queue = []
        return "halted"

    # -- inspection ----------------------------------------------------------

    def registers(self, register_file: str) -> List[int]:
        """Snapshot of one register file."""
        size = self.machine.register_file(register_file).size
        return [
            self.state.read_register(register_file, i) for i in range(size)
        ]

    def variable(self, name: str) -> int:
        """Read a data-memory variable by symbol name."""
        if name not in self.program.symbols:
            raise SimulationError(f"no symbol {name!r}")
        return self.state.read_memory(
            self.machine.data_memory, self.program.symbols[name]
        )

    def where(self) -> str:
        """Human-readable position: nearest label plus offset."""
        best_label, best_address = None, -1
        for label, address in self.program.labels.items():
            if best_address < address <= self.state.pc:
                best_label, best_address = label, address
        if best_label is None:
            return f"@{self.state.pc}"
        offset = self.state.pc - best_address
        suffix = f"+{offset}" if offset else ""
        return f"{best_label}{suffix} (@{self.state.pc})"
