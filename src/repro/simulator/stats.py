"""Dynamic execution statistics.

Counts, over a simulated run, how often each functional unit issued an
operation, each bus carried a transfer, and each memory was read or
written — the activity numbers an ASIP designer feeds into area/power
estimation when exploring architectures (the co-design loop of the
paper's introduction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.isdl.model import Machine
from repro.telemetry.session import current as _telemetry
from repro.asmgen.instruction import Instruction, MemRef, Program, RegRef


@dataclass
class ExecutionStats:
    """Aggregated activity counts for one run."""

    cycles: int = 0
    instructions_executed: int = 0
    nops: int = 0
    unit_ops: Dict[str, int] = field(default_factory=dict)
    op_frequency: Dict[str, int] = field(default_factory=dict)
    bus_transfers: Dict[str, int] = field(default_factory=dict)
    memory_reads: Dict[str, int] = field(default_factory=dict)
    memory_writes: Dict[str, int] = field(default_factory=dict)
    control_events: Dict[str, int] = field(default_factory=dict)

    def record(self, instruction: Instruction) -> None:
        """Accumulate one executed instruction's activity."""
        self.instructions_executed += 1
        if instruction.is_empty():
            self.nops += 1
        for op_slot in instruction.ops:
            self.unit_ops[op_slot.unit] = (
                self.unit_ops.get(op_slot.unit, 0) + 1
            )
            mnemonic = f"{op_slot.unit}.{op_slot.op_name}"
            self.op_frequency[mnemonic] = (
                self.op_frequency.get(mnemonic, 0) + 1
            )
        for transfer in instruction.transfers:
            self.bus_transfers[transfer.bus] = (
                self.bus_transfers.get(transfer.bus, 0) + 1
            )
            if isinstance(transfer.source, MemRef):
                memory = transfer.source.memory
                self.memory_reads[memory] = (
                    self.memory_reads.get(memory, 0) + 1
                )
            if isinstance(transfer.destination, MemRef):
                memory = transfer.destination.memory
                self.memory_writes[memory] = (
                    self.memory_writes.get(memory, 0) + 1
                )
        if instruction.control is not None:
            kind = instruction.control.kind.value
            self.control_events[kind] = (
                self.control_events.get(kind, 0) + 1
            )

    def slot_utilization(self, machine: Machine) -> Dict[str, float]:
        """Busy fraction per unit and bus over the executed cycles.

        Keys are inserted in sorted order (units, then buses) so renders
        of this dict are stable regardless of declaration order.
        """
        cycles = max(1, self.instructions_executed)
        utilization: Dict[str, float] = {}
        for unit in sorted(machine.unit_names()):
            utilization[unit] = self.unit_ops.get(unit, 0) / cycles
        for bus in sorted(machine.bus_names()):
            utilization[bus] = self.bus_transfers.get(bus, 0) / cycles
        return utilization

    def to_counters(self) -> Dict[str, int]:
        """Flatten the run's activity into sorted telemetry counters.

        The bridge used by ``--profile`` runs: every key is a flat
        ``sim.*`` counter name suitable for
        :meth:`repro.telemetry.TelemetrySession.merge_counters`.
        """
        counters: Dict[str, int] = {
            "sim.cycles": self.cycles,
            "sim.instructions": self.instructions_executed,
            "sim.nops": self.nops,
        }
        for unit, count in sorted(self.unit_ops.items()):
            counters[f"sim.unit.{unit}"] = count
        for bus, count in sorted(self.bus_transfers.items()):
            counters[f"sim.bus.{bus}"] = count
        for memory in sorted(set(self.memory_reads) | set(self.memory_writes)):
            counters[f"sim.mem.{memory}.reads"] = self.memory_reads.get(
                memory, 0
            )
            counters[f"sim.mem.{memory}.writes"] = self.memory_writes.get(
                memory, 0
            )
        for kind, count in sorted(self.control_events.items()):
            counters[f"sim.control.{kind}"] = count
        return counters

    def describe(self, machine: Optional[Machine] = None) -> str:
        """Readable multi-line activity report."""
        lines = [
            f"executed {self.instructions_executed} instructions "
            f"({self.nops} NOPs)"
        ]
        for unit, count in sorted(self.unit_ops.items()):
            lines.append(f"  unit {unit}: {count} ops")
        for bus, count in sorted(self.bus_transfers.items()):
            lines.append(f"  bus {bus}: {count} transfers")
        for memory in sorted(
            set(self.memory_reads) | set(self.memory_writes)
        ):
            lines.append(
                f"  memory {memory}: {self.memory_reads.get(memory, 0)} "
                f"reads, {self.memory_writes.get(memory, 0)} writes"
            )
        for kind, count in sorted(self.control_events.items()):
            lines.append(f"  control {kind}: {count}")
        if machine is not None:
            # max() keeps the first maximal entry, and slot_utilization
            # inserts sorted keys, so ties break alphabetically — stable
            # across hash seeds and machine declaration order.
            busiest = max(
                self.slot_utilization(machine).items(),
                key=lambda kv: kv[1],
                default=(None, 0.0),
            )
            if busiest[0] is not None:
                lines.append(
                    f"  bottleneck: {busiest[0]} at "
                    f"{100 * busiest[1]:.0f}% occupancy"
                )
        return "\n".join(lines)


def profile_run(
    program: Program,
    machine: Machine,
    initial: Optional[Dict[str, int]] = None,
    max_cycles: int = 1_000_000,
) -> ExecutionStats:
    """Run ``program`` and return its execution statistics.

    A thin wrapper over the simulator that records per-instruction
    activity (the result's variable values are discarded; use
    :func:`repro.simulator.run_program` when you need them too).
    """
    from repro.simulator.executor import run_program

    tm = _telemetry()
    stats = ExecutionStats()
    with tm.span("simulate", category="simulator"):
        result = run_program(
            program, machine, initial, max_cycles=max_cycles, trace=True
        )
        stats.cycles = result.cycles
        # Replay the trace's pc values against the program to recount the
        # actually executed instructions (the trace format is
        # "cycle @pc: text"; we re-read the pc field).
        for line in result.trace:
            at = line.index("@")
            pc = int(line[at + 1 : line.index(":", at)])
            stats.record(program.instructions[pc])
    if tm.enabled:
        tm.merge_counters(stats.to_counters())
    return stats
