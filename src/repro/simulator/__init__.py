"""Instruction-level VLIW simulator (the Fig. 1 framework's simulator).

Executes :class:`repro.asmgen.instruction.Program` objects cycle by
cycle on a :class:`MachineState`; used as the end-to-end correctness
oracle against the IR interpreter.
"""

from repro.simulator.state import MachineState
from repro.simulator.executor import SimulationResult, run_program, execute_instruction
from repro.simulator.debug import Debugger
from repro.simulator.stats import ExecutionStats, profile_run

__all__ = [
    "MachineState",
    "SimulationResult",
    "run_program",
    "execute_instruction",
    "Debugger",
    "ExecutionStats",
    "profile_run",
]
