"""Cycle-level execution of VLIW programs.

Within one instruction, every slot reads its sources before any slot's
result is written (read-before-write semantics), which is what allows a
register freed by its last reader to be refilled in the same cycle — the
covering engine's pressure model and the register allocator's half-open
live ranges both rely on this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.isdl.model import Machine
from repro.asmgen.instruction import (
    ControlKind,
    Instruction,
    Program,
)
from repro.simulator.state import MachineState


@dataclass
class SimulationResult:
    """Outcome of running a program."""

    cycles: int
    state: MachineState
    variables: Dict[str, int] = field(default_factory=dict)
    trace: List[str] = field(default_factory=list)


def execute_instruction(
    instruction: Instruction,
    state: MachineState,
    labels: Optional[Dict[str, int]] = None,
    write_queue: Optional[List[Tuple[int, object, int]]] = None,
) -> int:
    """Execute one instruction; returns the next program counter.

    With ``write_queue`` supplied, results of multi-cycle operations are
    appended as ``(due_cycle, destination, value)`` instead of being
    written immediately; the caller applies them when due (see
    :func:`run_program`).  Without a queue every write lands at the end
    of the cycle (the single-cycle machines of the paper).
    """
    machine = state.machine
    labels = labels or {}
    # Read phase: gather every source value and check slot legality.
    units_used = set()
    op_inputs: List[Tuple[int, ...]] = []
    for op_slot in instruction.ops:
        if op_slot.unit in units_used:
            raise SimulationError(f"unit {op_slot.unit} used twice in one word")
        units_used.add(op_slot.unit)
        unit = machine.unit(op_slot.unit)
        if op_slot.destination.register_file != unit.register_file:
            raise SimulationError(
                f"{op_slot}: destination not in {unit.register_file}"
            )
        for source in op_slot.sources:
            if source.register_file != unit.register_file:
                raise SimulationError(
                    f"{op_slot}: operand {source} not in the unit's "
                    f"register file {unit.register_file}"
                )
        op_inputs.append(tuple(state.read(s) for s in op_slot.sources))
    buses_used = set()
    transfer_values: List[int] = []
    for transfer in instruction.transfers:
        if transfer.bus in buses_used:
            raise SimulationError(f"bus {transfer.bus} used twice in one word")
        buses_used.add(transfer.bus)
        bus = machine.bus(transfer.bus)
        for endpoint in (transfer.source, transfer.destination):
            storage = getattr(endpoint, "register_file", None) or getattr(
                endpoint, "memory"
            )
            if storage not in bus.connects:
                raise SimulationError(
                    f"{transfer}: {storage} is not connected to {bus.name}"
                )
        transfer_values.append(state.read(transfer.source))
    condition_value = None
    control = instruction.control
    if control is not None and control.condition is not None:
        condition_value = state.read(control.condition)

    # Compute phase.
    op_results: List[int] = []
    for op_slot, inputs in zip(instruction.ops, op_inputs):
        machine_op = machine.unit(op_slot.unit).op_named(op_slot.op_name)
        if machine_op is None:
            raise SimulationError(
                f"unit {op_slot.unit} has no operation {op_slot.op_name!r}"
            )
        if len(inputs) != machine_op.arity:
            raise SimulationError(
                f"{op_slot}: expected {machine_op.arity} operands, "
                f"got {len(inputs)}"
            )
        op_results.append(machine_op.semantics.evaluate(inputs))

    # Write phase.
    for op_slot, result in zip(instruction.ops, op_results):
        machine_op = machine.unit(op_slot.unit).op_named(op_slot.op_name)
        if write_queue is not None and machine_op.latency > 1:
            write_queue.append(
                (state.cycle + machine_op.latency, op_slot.destination, result)
            )
        else:
            state.write(op_slot.destination, result)
    for transfer, value in zip(instruction.transfers, transfer_values):
        state.write(transfer.destination, value)

    # Control phase.
    next_pc = state.pc + 1
    if control is not None:
        if control.kind is ControlKind.HALT:
            state.halted = True
        elif control.kind is ControlKind.JMP:
            next_pc = _resolve(labels, control.target)
        elif control.kind is ControlKind.BNZ:
            if condition_value != 0:
                next_pc = _resolve(labels, control.target)
        elif control.kind is ControlKind.BEZ:
            if condition_value == 0:
                next_pc = _resolve(labels, control.target)
    return next_pc


def _resolve(labels: Dict[str, int], target: Optional[str]) -> int:
    if target is None or target not in labels:
        raise SimulationError(f"undefined branch target {target!r}")
    return labels[target]


def run_program(
    program: Program,
    machine: Machine,
    initial: Optional[Dict[str, int]] = None,
    max_cycles: int = 1_000_000,
    trace: bool = False,
) -> SimulationResult:
    """Run ``program`` to completion on a fresh machine state.

    ``initial`` sets named variables in data memory before execution
    (addresses come from the program's symbol table).  The result maps
    every symbol back to its final value.
    """
    if program.machine_name != machine.name:
        raise SimulationError(
            f"program was compiled for {program.machine_name!r}, "
            f"not {machine.name!r}"
        )
    state = MachineState(machine)
    state.load_data(program.data)
    for name, value in (initial or {}).items():
        if name not in program.symbols:
            continue  # variable unused by the program
        state.write_memory(
            machine.data_memory, program.symbols[name], value
        )
    result = SimulationResult(cycles=0, state=state)
    write_queue: List[Tuple[int, object, int]] = []
    while not state.halted:
        if state.pc >= len(program.instructions):
            break  # fell off the end: implicit halt
        if state.cycle >= max_cycles:
            raise SimulationError(
                f"exceeded {max_cycles} cycles; assuming livelock"
            )
        # Multi-cycle results land at the start of their due cycle,
        # before this cycle's reads.
        if write_queue:
            due = [w for w in write_queue if w[0] <= state.cycle]
            for _due_cycle, destination, value in due:
                state.write(destination, value)
            write_queue = [w for w in write_queue if w[0] > state.cycle]
        instruction = program.instructions[state.pc]
        if trace:
            result.trace.append(f"{state.cycle:5d} @{state.pc:4d}: {instruction}")
        state.pc = execute_instruction(
            instruction, state, program.labels, write_queue
        )
        state.cycle += 1
    for _due_cycle, destination, value in write_queue:
        state.write(destination, value)  # drain in-flight results
    result.cycles = state.cycle
    result.variables = {
        name: state.read_memory(machine.data_memory, address)
        for name, address in program.symbols.items()
    }
    return result
