"""Register-requirement tracking during covering (paper, Section IV-D).

"The available resources are determined by performing a liveness
analysis on the selected nodes and maintaining a running upper bound on
the number of required registers for each register bank."

A *delivery* is a task writing a value into a register file; the value
occupies one register from the cycle the delivery executes until the
cycle its last consumer executes (consumers read before writes take
effect, so a register freed in a cycle may be re-filled in the same
cycle).  :class:`PressureTracker` maintains, per bank, the set of live
deliveries and their still-uncovered consumers, and answers whether a
candidate clique keeps every bank within capacity.

Because the tracker enforces ``occupancy <= bank size`` after every
scheduled instruction, live ranges form an interval graph whose maximum
clique is within capacity — which is why detailed register allocation
afterwards can never fail (Section IV-F).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.covering.taskgraph import TaskGraph
from repro.isdl.model import Machine


class PressureTracker:
    """Running per-bank liveness upper bounds over a covering in progress."""

    def __init__(self, graph: TaskGraph):
        self.graph = graph
        self.machine: Machine = graph.machine
        self._bank_sizes: Dict[str, int] = {
            rf.name: rf.size for rf in self.machine.register_files
        }
        #: bank -> {delivery task id -> set of uncovered consumer ids}
        self.live: Dict[str, Dict[int, Set[int]]] = {
            name: {} for name in self._bank_sizes
        }
        #: highest occupancy ever reached, per bank (register estimate).
        self.peak: Dict[str, int] = {name: 0 for name in self._bank_sizes}
        self._covered: Set[int] = set()
        #: dead deliveries (no consumers): they occupy a register until
        #: their result has been written (``latency`` cycles after
        #: issue) and then free automatically.  Maps delivery id to the
        #: remaining commits before release.
        self._transient: Dict[int, int] = {}

    # -- queries -----------------------------------------------------------

    def occupancy(self, bank: str) -> int:
        """Values currently live in ``bank``."""
        return len(self.live[bank])

    def capacity(self, bank: str) -> int:
        """Register count of ``bank``."""
        return self._bank_sizes[bank]

    def banks(self) -> List[str]:
        """Names of all tracked register banks."""
        return list(self._bank_sizes)

    def live_deliveries(self, bank: str) -> List[int]:
        """Deliveries currently occupying ``bank`` (sorted)."""
        return sorted(self.live[bank])

    def pending_consumers(self, delivery_id: int) -> Set[int]:
        """Uncovered consumers still needing this delivery."""
        bank = self.graph.tasks[delivery_id].dest_storage
        return set(self.live[bank].get(delivery_id, ()))

    def feasible(self, clique: Iterable[int]) -> bool:
        """Would scheduling ``clique`` keep every bank within capacity?"""
        members = set(clique)
        for bank, occupants in self.live.items():
            freed = 0
            for delivery_id, consumers in occupants.items():
                if delivery_id in self._transient:
                    if self._transient[delivery_id] <= 1:
                        freed += 1  # dead value's write lands this cycle
                elif consumers and consumers.issubset(members):
                    if delivery_id not in self.graph.pinned:
                        freed += 1
            arrivals = self._arrivals(members, bank)
            if len(occupants) - freed + arrivals > self._bank_sizes[bank]:
                return False
        return True

    def blocked_banks(self, clique: Iterable[int]) -> List[str]:
        """Banks whose capacity the clique would exceed."""
        members = set(clique)
        blocked = []
        for bank, occupants in self.live.items():
            freed = 0
            for delivery_id, consumers in occupants.items():
                if delivery_id in self._transient:
                    if self._transient[delivery_id] <= 1:
                        freed += 1
                elif consumers and consumers.issubset(members):
                    if delivery_id not in self.graph.pinned:
                        freed += 1
            arrivals = self._arrivals(members, bank)
            if len(occupants) - freed + arrivals > self._bank_sizes[bank]:
                blocked.append(bank)
        return blocked

    def _arrivals(self, members: Set[int], bank: str) -> int:
        count = 0
        for task_id in members:
            task = self.graph.tasks[task_id]
            if task.dest_storage == bank:
                count += 1
        return count

    # -- state transitions ---------------------------------------------------

    def commit(self, clique: Iterable[int]) -> None:
        """Record that the clique's tasks executed (one instruction)."""
        members = set(clique)
        self._covered |= members
        for bank, occupants in self.live.items():
            for delivery_id in list(occupants):
                if delivery_id in self._transient:
                    self._transient[delivery_id] -= 1
                    if self._transient[delivery_id] <= 0:
                        del occupants[delivery_id]
                        del self._transient[delivery_id]
                    continue
                occupants[delivery_id] -= members
                if (
                    not occupants[delivery_id]
                    and delivery_id not in self.graph.pinned
                ):
                    del occupants[delivery_id]
        for task_id in sorted(members):
            task = self.graph.tasks[task_id]
            bank = task.dest_storage
            if bank not in self.live:
                continue  # destination is a memory: no register pressure
            consumers = {
                c
                for c in self.graph.consumers_of(task_id)
                if c not in self._covered
            }
            if consumers or task_id in self.graph.pinned:
                self.live[bank][task_id] = consumers
            else:
                # Dead result: physically written ``latency`` cycles
                # after issue, reusable once the write has landed.
                self.live[bank][task_id] = set()
                self._transient[task_id] = self.graph.latency(task_id)
        for bank in self.live:
            self.peak[bank] = max(self.peak[bank], len(self.live[bank]))

    def rebuild(self, covered_cliques: List[List[int]]) -> None:
        """Recompute state from scratch after the task graph mutated
        (spill insertion rewires consumers)."""
        self.live = {name: {} for name in self._bank_sizes}
        self._covered = set()
        self._transient = {}
        saved_peak = dict(self.peak)
        self.peak = {name: 0 for name in self._bank_sizes}
        for clique in covered_cliques:
            self.commit([t for t in clique if t in self.graph.tasks])
        for bank in self.peak:
            self.peak[bank] = max(self.peak[bank], saved_peak[bank])

    def register_estimate(self) -> Dict[str, int]:
        """Peak simultaneous values per bank — the engine's estimate of
        register requirements (paper, Section III-A)."""
        return dict(self.peak)
