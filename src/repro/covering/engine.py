"""The overall covering driver (paper, Fig. 5).

    Explore possible split-node functional unit assignments
      - estimate cost of assignment
      - select several lowest cost assignments to explore in detail
    For each selected assignment
      - insert required data transfers
      - generate all maximal groupings of nodes executable in parallel
      - select a minimal-cost set of maximal groupings covering all nodes
    Final solution is the lowest-cost solution found above

:func:`generate_block_solution` runs this pipeline for one basic-block
DAG; :class:`CodeGenerator` adds convenience and caching around it.
"""

from __future__ import annotations

import copy
import hashlib
import os
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Union

from repro.errors import CoverageError
from repro.ir.cfg import BasicBlock, Branch
from repro.ir.dag import BlockDAG
from repro.isdl.model import Machine
from repro.covering.assignment import explore_assignments
from repro.covering.config import HeuristicConfig
from repro.covering.cover import cover_assignment
from repro.covering.solution import BlockSolution
from repro.covering.taskgraph import TaskGraph
from repro.sndag.build import SplitNodeDAG, build_split_node_dag
from repro.telemetry.clock import Stopwatch
from repro.telemetry.session import current as _telemetry

if TYPE_CHECKING:  # imported lazily at runtime: serve depends on covering
    from repro.serve.cache import BlockCache


#: Memo key: (DAG fingerprint, machine fingerprint, config, pin_value).
_MemoKey = Tuple[str, str, HeuristicConfig, Optional[int]]

#: Entries kept per memo before the least recently used are evicted.
_MEMO_CAPACITY = 256


def machine_fingerprint(machine: Machine) -> str:
    """Stable content hash of a machine description.

    Hashes the canonical ISDL rendering, so two `Machine` objects that
    describe the same processor — regardless of identity — share block
    solutions.  Cached on the instance: machines are immutable in
    practice once built.
    """
    cached = getattr(machine, "_isdl_fingerprint", None)
    if cached is None:
        from repro.isdl.writer import machine_to_isdl

        cached = hashlib.sha256(machine_to_isdl(machine).encode()).hexdigest()
        machine._isdl_fingerprint = cached
    return cached


def _clone_solution(solution: BlockSolution) -> BlockSolution:
    """Deep copy of a memoized solution, sharing the immutable parts.

    Downstream passes mutate solutions — peephole deletes tasks from
    ``solution.graph.tasks`` and reassigns ``solution.schedule`` — so a
    memo hit must hand out a private copy.  The Split-Node DAG, machine,
    source DAG, and assignment are never mutated, so they are pre-seeded
    into the deepcopy memo and stay shared.
    """
    shared = {
        id(solution.sn): solution.sn,
        id(solution.assignment): solution.assignment,
        id(solution.graph.machine): solution.graph.machine,
    }
    dag = getattr(solution.sn, "dag", None)
    if dag is not None:
        shared[id(dag)] = dag
    return copy.deepcopy(solution, shared)


def generate_block_solution(
    dag: BlockDAG,
    machine: Machine,
    config: Optional[HeuristicConfig] = None,
    pin_value: Optional[int] = None,
    sn: Optional[SplitNodeDAG] = None,
    memo: Optional[Dict[_MemoKey, BlockSolution]] = None,
    disk_cache: Optional["BlockCache"] = None,
) -> BlockSolution:
    """Produce the lowest-cost covering of one basic-block DAG.

    Args:
        dag: the block to compile.
        machine: the target processor.
        config: heuristic settings (default: the paper's headline mode).
        pin_value: original-DAG id of a value that must remain register-
            resident at block end (a branch condition).
        sn: a pre-built Split-Node DAG, if the caller already has one.
        memo: optional block-solution cache keyed by (DAG fingerprint,
            machine fingerprint, config, pin_value); repeated blocks
            compile once and hits return a private deep copy.  True LRU:
            a hit refreshes the entry, eviction removes the least
            recently used.
        disk_cache: optional persistent cache
            (:class:`repro.serve.cache.BlockCache`) probed after the
            in-memory memo and filled on every fresh compile; hits skip
            the covering search entirely and warm the memo.

    Raises:
        CoverageError: if no assignment can be covered (e.g. register
            files too small for any implementation).
    """
    config = config or HeuristicConfig.default()
    tm = _telemetry()
    jr = tm.journal
    key: Optional[_MemoKey] = None
    if memo is not None or disk_cache is not None:
        key = (
            dag.fingerprint(),
            machine_fingerprint(machine),
            config,
            pin_value,
        )
    if memo is not None:
        hit = memo.pop(key, None)
        if hit is not None:
            memo[key] = hit  # move to end: most recently used
            tm.count("cover.memo_hits", 1)
            if jr.enabled:
                jr.emit(
                    "memo.hit",
                    dag=key[0][:12],
                    machine=key[1][:12],
                    pin=pin_value,
                )
            return _clone_solution(hit)
        tm.count("cover.memo_misses", 1)
        if jr.enabled:
            jr.emit(
                "memo.miss",
                dag=key[0][:12],
                machine=key[1][:12],
                pin=pin_value,
            )
    if disk_cache is not None:
        cached = disk_cache.get(key, dag, machine)
        if cached is not None:
            if memo is not None:
                if len(memo) >= _MEMO_CAPACITY:
                    memo.pop(next(iter(memo)))
                memo[key] = _clone_solution(cached)
            return cached
    watch = Stopwatch()
    with watch, tm.span("covering.block", category="covering"):
        if sn is None:
            sn = build_split_node_dag(dag, machine, mode=config.sndag_mode)
        assignments = explore_assignments(sn, config)
        if not assignments:
            raise CoverageError(
                f"no complete functional-unit assignment exists for this "
                f"block on machine {machine.name!r}"
            )
        best: Optional[BlockSolution] = None
        best_index = -1
        failures = []
        for index, assignment in enumerate(assignments):
            bound = None
            if best is not None and config.branch_and_bound:
                bound = best.instruction_count
            result = None
            graph = None
            # Register starvation is resolved by a focused spill policy;
            # two complementary focus strategies exist, and an assignment
            # that thrashes under one usually converges under the other.
            for strategy in ("consumer", "arrival"):
                jr.begin_attempt(index, strategy)
                if jr.enabled:
                    jr.emit(
                        "cover.attempt",
                        assignment=index,
                        cost=assignment.cost,
                        bound=bound,
                    )
                graph = TaskGraph(sn, assignment, pin_value=pin_value)
                try:
                    result = cover_assignment(
                        graph, config, bound, stuck_strategy=strategy
                    )
                    if jr.enabled:
                        if result is None:
                            jr.emit("cover.outcome", status="pruned")
                        else:
                            jr.emit(
                                "cover.outcome",
                                status="covered",
                                instructions=result.instruction_count,
                                spills=result.spill_count,
                                reloads=result.reload_count,
                            )
                except CoverageError as error:
                    failures.append(error)
                    tm.count("covering.strategy_failures", 1)
                    if jr.enabled:
                        jr.emit("cover.outcome", status="failed", error=str(error))
                    continue
                finally:
                    jr.end_attempt()
                break
            if result is None:
                continue  # pruned by the bound or uncoverable
            if best is None or result.instruction_count < best.instruction_count:
                if best is not None:
                    tm.count("covering.best_improved", 1)
                best = BlockSolution(
                    machine_name=machine.name,
                    sn=sn,
                    assignment=assignment,
                    graph=graph,
                    schedule=result.schedule,
                    register_estimate=result.register_estimate,
                    spill_count=result.spill_count,
                    reload_count=result.reload_count,
                    assignments_explored=len(assignments),
                )
                best_index = index
        if best is not None:
            if tm.enabled and sn.mode == "lazy":
                xfer = sn.transfer_stats()
                tm.count("sndag.transfer_nodes_avoided", xfer["avoided"])
            tm.count("covering.blocks", 1)
            tm.count("covering.spills", best.spill_count)
            tm.count("covering.reloads", best.reload_count)
            tm.count("covering.instructions", best.instruction_count)
            if jr.enabled:
                jr.emit(
                    "block.solution",
                    assignment=best_index,
                    instructions=best.instruction_count,
                    spills=best.spill_count,
                    reloads=best.reload_count,
                    register_estimate=dict(sorted(best.register_estimate.items())),
                )
    if best is None:
        detail = f"; last error: {failures[-1]}" if failures else ""
        raise CoverageError(
            f"every explored assignment failed to cover on machine "
            f"{machine.name!r}{detail}"
        )
    best.cpu_seconds = watch.elapsed
    if memo is not None and key is not None:
        if len(memo) >= _MEMO_CAPACITY:
            # Least recently used first: hits reinsert at the end, so
            # the dict's insertion order is the recency order.
            memo.pop(next(iter(memo)))
        # Store a pristine copy: the returned solution will be mutated
        # downstream (peephole), the cached one must stay untouched.
        memo[key] = _clone_solution(best)
    if disk_cache is not None and key is not None:
        # Serialized immediately, so downstream mutation of the
        # returned solution cannot leak into the persisted entry.
        disk_cache.put(key, best)
    return best


class CodeGenerator:
    """Front door for block-level code generation on one machine.

    Carries a block-solution memo: blocks with identical DAGs (same
    fingerprint, same pin) compile once per generator — a win for
    unrolled loops and repeated basic blocks within a function.

    With ``cache_dir=`` the memo is backed by the **persistent**
    content-addressed block cache (:mod:`repro.serve.cache`): solutions
    survive the process and warm-start later compiles anywhere that
    points at the same directory — the batch service, repeated CLI
    runs, the fuzz harness, CI.

    With ``validate=True`` every produced solution (memo and disk-cache
    hits included) is re-checked by the independent translation
    validator (:mod:`repro.verify`) before being returned, and a
    :class:`repro.errors.VerificationError` carrying the structured
    violation list is raised when any paper invariant is broken.

    With ``backend="optimal"`` each block is solved to proven minimal
    length by the constraint-solver oracle (:mod:`repro.optimal`): the
    heuristic result seeds the bound, the solver proves or improves it,
    and every improving schedule is certified by the validator before
    emission.  Optimal compiles bypass the memo and disk cache (cached
    heuristic schedules must never shadow a proof) and leave the full
    :class:`repro.optimal.OptimalSolveResult` of the most recent block
    in ``last_optimal``.
    """

    def __init__(
        self,
        machine: Machine,
        config: Optional[HeuristicConfig] = None,
        validate: bool = False,
        cache_dir: Optional[Union[str, "os.PathLike"]] = None,
        cache: Optional["BlockCache"] = None,
        backend: str = "heuristic",
        conflict_budget: Optional[int] = None,
    ):
        if backend not in ("heuristic", "optimal"):
            raise ValueError(
                f"unknown backend {backend!r}: want 'heuristic' or "
                f"'optimal'"
            )
        self.machine = machine
        self.config = config or HeuristicConfig.default()
        self.validate = validate
        self.backend = backend
        self.conflict_budget = conflict_budget
        #: The optimal backend's full result for the last compiled
        #: block (``None`` under the heuristic backend).
        self.last_optimal = None
        self._memo: Dict[_MemoKey, BlockSolution] = {}
        if cache is None and cache_dir is not None:
            # Lazy import: repro.serve sits on top of the covering
            # layer; engine must stay importable without it at load
            # time.
            from repro.serve.cache import BlockCache

            cache = BlockCache(cache_dir)
        self.cache = cache

    def compile_dag(
        self, dag: BlockDAG, pin_value: Optional[int] = None
    ) -> BlockSolution:
        """Cover one expression DAG; see :func:`generate_block_solution`."""
        if self.backend == "optimal":
            return self._compile_optimal(dag, pin_value)
        solution = generate_block_solution(
            dag,
            self.machine,
            self.config,
            pin_value=pin_value,
            memo=self._memo,
            disk_cache=self.cache,
        )
        if self.validate:
            self._validate(solution)
        return solution

    def _compile_optimal(
        self, dag: BlockDAG, pin_value: Optional[int]
    ) -> BlockSolution:
        # Lazy import: repro.optimal drives the covering engine for its
        # heuristic seed, so the engine must not require it at load
        # time.
        from repro.optimal import (
            DEFAULT_CONFLICT_BUDGET,
            optimal_block_solution,
        )

        budget = self.conflict_budget
        if budget is None:
            budget = DEFAULT_CONFLICT_BUDGET
        result = optimal_block_solution(
            dag,
            self.machine,
            pin_value=pin_value,
            config=self.config,
            conflict_budget=budget,
        )
        self.last_optimal = result
        solution = result.best_solution()
        if self.validate:
            self._validate(solution)
        return solution

    def _validate(self, solution: BlockSolution) -> None:
        # Imported lazily: repro.verify must stay import-independent of
        # the covering layer it audits, and vice versa.
        from repro.errors import VerificationError
        from repro.verify import verify_solution

        tm = _telemetry()
        with tm.span("verify.block", category="verify"):
            report = verify_solution(solution)
        tm.count("verify.blocks", 1)
        tm.count("verify.checks", report.checks)
        tm.count("verify.violations", len(report.violations))
        if not report.ok:
            raise VerificationError(
                f"schedule failed translation validation "
                f"({len(report.violations)} violation(s)):\n"
                + "\n".join(v.describe() for v in report.violations),
                violations=report.violations,
            )

    def compile_block(self, block: BasicBlock) -> BlockSolution:
        """Cover a basic block, pinning its branch condition if any."""
        pin_value = None
        if isinstance(block.terminator, Branch):
            pin_value = block.terminator.condition
        return self.compile_dag(block.dag, pin_value=pin_value)
