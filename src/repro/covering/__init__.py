"""The concurrent covering engine (paper, Section IV).

This package implements AVIV's central contribution: covering the
Split-Node DAG with a minimal-cost set of target instructions while
performing functional-unit assignment, operation/transfer grouping,
register-bank allocation, and scheduling *concurrently*:

- :mod:`repro.covering.config` — heuristic toggles (the paper's
  "multiple heuristics that can be turned off if desired").
- :mod:`repro.covering.assignment` — split-node functional-unit
  assignment exploration with the incremental cost function (IV-A).
- :mod:`repro.covering.taskgraph` — materialises one assignment as a
  graph of schedulable operation and transfer tasks, choosing among
  multiple transfer paths (IV-B), and supports spill insertion (Fig. 9).
- :mod:`repro.covering.parallelism` — the pairwise-parallelism matrix
  (IV-C.1, Fig. 7).
- :mod:`repro.covering.cliques` — maximal-clique generation with the
  paper's pruning rule (Fig. 8), the level-window heuristic (IV-C.2),
  and illegal-instruction splitting (IV-C.3).
- :mod:`repro.covering.pressure` — running register-requirement upper
  bounds per register bank.
- :mod:`repro.covering.cover` — greedy minimum-cost clique covering
  with lookahead tie-breaking and spill handling (IV-D).
- :mod:`repro.covering.engine` — the Fig. 5 driver; produces a
  :class:`repro.covering.solution.BlockSolution`.
"""

from repro.covering.config import HeuristicConfig
from repro.covering.assignment import Assignment, explore_assignments
from repro.covering.taskgraph import Task, TaskGraph, TaskKind, ReadRef
from repro.covering.parallelism import parallelism_masks, parallelism_matrix
from repro.covering.cliques import (
    generate_maximal_clique_masks,
    generate_maximal_cliques,
    legalize_clique_masks,
    legalize_cliques,
)
from repro.covering.pressure import PressureTracker
from repro.covering.cover import cover_assignment
from repro.covering.solution import BlockSolution
from repro.covering.engine import CodeGenerator, generate_block_solution

__all__ = [
    "HeuristicConfig",
    "Assignment",
    "explore_assignments",
    "Task",
    "TaskGraph",
    "TaskKind",
    "ReadRef",
    "parallelism_matrix",
    "parallelism_masks",
    "generate_maximal_cliques",
    "generate_maximal_clique_masks",
    "legalize_cliques",
    "legalize_clique_masks",
    "PressureTracker",
    "cover_assignment",
    "BlockSolution",
    "CodeGenerator",
    "generate_block_solution",
]
