"""Greedy minimum-cost clique covering with scheduling (paper, IV-D).

The covering loop repeatedly selects the clique that covers the largest
number of remaining uncovered *ready* tasks (tasks whose children have
all been covered — so a schedule falls out of the selection order) whose
register requirements stay within the per-bank liveness upper bound.
Ties are broken by a lookahead estimate of the number of cliques still
needed.  When no clique is register-feasible, a covered value is chosen
for spilling — based on the most-needed bank and the number of reloads
the spill will cause — the task graph is augmented with load/spill
transfers (Fig. 9), and the maximal cliques are regenerated.

Two implementations of the loop exist, selected by
``HeuristicConfig.clique_kernel``:

- ``"bitmask"`` (default): cliques, ready/admissible sets, and
  parallelism rows are integer bitmasks; the ready set is maintained
  incrementally; after a spill only the cliques whose members touch the
  rewired subgraph are re-enumerated (:class:`_MaskCliqueCache`).
- ``"reference"``: the original set/numpy implementation, recomputing
  the ready set per iteration and rebuilding all cliques after a spill.

Both make identical decisions at every step and produce bit-identical
schedules; the ``hotpath`` test suite and a fuzz-oracle pass enforce it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import CoverageError
from repro.covering.cliques import (
    _enumerate_clique_masks,
    generate_maximal_clique_masks,
    generate_maximal_cliques,
    legalize_clique_masks,
    legalize_cliques,
)
from repro.covering.config import HeuristicConfig
from repro.covering.parallelism import parallelism_masks, parallelism_matrix
from repro.covering.pressure import PressureTracker
from repro.covering.taskgraph import TaskGraph
from repro.telemetry.session import current as _telemetry
from repro.utils.bitset import bits, iter_bits, mask_of, popcount
from repro.utils.graph import topological_order


@dataclass
class CoverResult:
    """Outcome of covering one assignment."""

    schedule: List[List[int]]
    register_estimate: Dict[str, int]
    spill_count: int
    reload_count: int

    @property
    def instruction_count(self) -> int:
        """Number of VLIW words in the covering (code size)."""
        return len(self.schedule)


@dataclass
class CoverStats:
    """Per-call covering-loop statistics, accumulated in the loop and
    flushed to telemetry counters once when the call exits.

    Both kernels update the same instance; named fields (rather than the
    positional list they replaced) make an index slip between the two
    update sites impossible.
    """

    iterations: int = 0
    stall_nops: int = 0
    subset_fallbacks: int = 0
    lookahead_ties: int = 0
    spill_rounds: int = 0


#: Losing cliques kept per ``cover.step`` journal entry; the rest are
#: counted in ``alternatives_dropped`` so journals stay bounded.
_STEP_ALTERNATIVES_CAP = 16


def _journal_step(
    jr,
    graph: TaskGraph,
    uncovered: Set[int],
    now: int,
    chosen: List[int],
    feasible: List[List[int]],
    top: List[List[int]],
    tie: bool,
    via_subset: bool,
) -> None:
    """Record one clique-selection decision (paper IV-D).

    ``chosen``/``feasible``/``top`` arrive as sorted member-id lists so
    the frozenset and bitmask kernels journal byte-identically.  The
    lookahead estimates are recomputed here for *every* candidate — the
    selection itself only computes them on a top-size tie — so the entry
    can always say what the tie-break saw (or would have seen).
    """
    order = _uncovered_order(graph, uncovered)

    def estimate(members: List[int]) -> int:
        return _lookahead_estimate(graph, uncovered - set(members), order)

    top_keys = {tuple(c) for c in top}
    losers = sorted(
        (c for c in feasible if c != chosen), key=lambda c: (-len(c), c)
    )
    dropped = max(0, len(losers) - _STEP_ALTERNATIVES_CAP)
    losers = losers[:_STEP_ALTERNATIVES_CAP]
    jr.emit(
        "cover.step",
        cycle=now,
        chosen={
            "members": chosen,
            "size": len(chosen),
            "lookahead": estimate(chosen),
        },
        alternatives=[
            {
                "members": c,
                "size": len(c),
                "lookahead": estimate(c),
                "top_tie": tuple(c) in top_keys,
            }
            for c in losers
        ],
        alternatives_dropped=dropped,
        tie_break="lookahead" if tie else "first",
        via_subset=via_subset,
    )


def _build_cliques(
    graph: TaskGraph, task_ids: List[int], config: HeuristicConfig
) -> List[FrozenSet[int]]:
    """Maximal legal cliques over ``task_ids``, as task-id frozensets."""
    if not task_ids:
        return []
    matrix, index_map = parallelism_matrix(
        graph, task_ids, level_window=config.level_window
    )
    cliques = generate_maximal_cliques(matrix, config.max_cliques)
    as_tasks = [
        frozenset(index_map[i] for i in clique) for clique in cliques
    ]
    return legalize_cliques(graph, as_tasks, graph.machine)


def _uncovered_order(graph: TaskGraph, uncovered: Set[int]) -> List[int]:
    """A topological order of the uncovered tasks (consumers first).

    Computed once per lookahead tie-break and shared by every candidate:
    the restriction of a valid topological order to any subset is a
    valid topological order of the induced subgraph, so
    :func:`_lookahead_estimate` can filter instead of re-sorting."""
    adjacency = {
        t: [d for d in graph.tasks[t].dependencies() if d in uncovered]
        for t in sorted(uncovered)
    }
    return topological_order(adjacency)


def _lookahead_estimate(
    graph: TaskGraph,
    remaining: Set[int],
    order: Optional[List[int]] = None,
) -> int:
    """Lower-bound style estimate of cliques needed for ``remaining``:
    the busiest resource's task count, or the longest dependence chain,
    whichever is larger.  ``order`` is an optional precomputed
    topological order of a superset of ``remaining``."""
    if not remaining:
        return 0
    per_resource: Dict[str, int] = {}
    for task_id in remaining:
        resource = graph.tasks[task_id].resource
        per_resource[resource] = per_resource.get(resource, 0) + 1
    resource_bound = max(per_resource.values())
    # Longest dependence chain within the remaining tasks.  Spill/reload
    # rewiring can make ascending task ids non-topological, so order
    # properly.
    if order is None:
        order = _uncovered_order(graph, remaining)
    ordered = [t for t in order if t in remaining]
    depth: Dict[int, int] = {}
    for task_id in reversed(ordered):
        best = 0
        for dependency in graph.tasks[task_id].dependencies():
            if dependency in remaining:
                best = max(best, depth[dependency])
        depth[task_id] = best + 1
    return max(resource_bound, max(depth.values()))


def _feasible_subset(
    tracker: PressureTracker, clique: FrozenSet[int]
) -> FrozenSet[int]:
    """Largest-effort feasible subset: greedily keep members (ascending
    id) while the subset stays within every bank's capacity."""
    subset: Set[int] = set()
    for task_id in sorted(clique):
        candidate = subset | {task_id}
        if tracker.feasible(candidate):
            subset = candidate
    return frozenset(subset)


def _choose_spill_victim(
    graph: TaskGraph,
    tracker: PressureTracker,
    candidates: List[FrozenSet[int]],
    covered: Set[int],
    ready: Optional[Set[int]] = None,
    protected: Optional[Set[int]] = None,
    focus_bank: Optional[str] = None,
    explain: Optional[List[Dict[str, object]]] = None,
) -> int:
    """Pick the delivery to spill (paper IV-D): most-needed bank first,
    then — Belady-style — the value whose next use is *farthest* away
    (measured in uncovered prerequisite tasks of its nearest consumer),
    breaking ties toward the fewest reloads, the paper's criterion.

    Values read by the focused consumer's own dependency subtree
    (``protected``) are only spilled when nothing else is available, and
    values whose every consumer is already schedulable come last: their
    registers free on their own as soon as the consumers run.
    """
    bank_pressure: Dict[str, int] = {}
    for clique in candidates:
        for bank in tracker.blocked_banks(clique):
            bank_pressure[bank] = bank_pressure.get(bank, 0) + 1
    if not bank_pressure:
        # Nothing schedulable at all and no blocked bank: every bank at
        # capacity with pinned/live values; fall back to fullest bank.
        for bank in tracker.banks():
            bank_pressure[bank] = tracker.occupancy(bank)
    ordered_banks = sorted(
        bank_pressure, key=lambda b: (-bank_pressure[b], b)
    )
    if focus_bank is not None:
        # Relieve the bank the focused consumer is blocked on first —
        # spilling elsewhere cannot unblock it.
        ordered_banks = [focus_bank] + [
            b for b in ordered_banks if b != focus_bank
        ]
    for bank in ordered_banks:
        victims = [
            d
            for d in tracker.live_deliveries(bank)
            if d not in graph.pinned and tracker.pending_consumers(d)
        ]
        if victims:

            def next_use_distance(delivery: int) -> int:
                pending = tracker.pending_consumers(delivery)
                return min(
                    (
                        len(_uncovered_ancestors(graph, c, covered)) - 1
                        for c in pending
                        if c in graph.tasks
                    ),
                    default=0,
                )

            def rank(delivery: int):
                pending = tracker.pending_consumers(delivery)
                future = [
                    c
                    for c in pending
                    if ready is None or c not in ready
                ]
                shielded = protected is not None and delivery in protected
                return (
                    1 if shielded else 0,
                    0 if future else 1,
                    -next_use_distance(delivery),
                    len(future) if future else len(pending),
                    delivery,
                )

            if explain is not None:
                # Journal the full ranking of the bank that decided the
                # spill, smallest rank tuple (= chosen victim) first.
                for delivery in sorted(victims, key=rank):
                    score = rank(delivery)
                    explain.append(
                        {
                            "delivery": delivery,
                            "bank": bank,
                            "shielded": bool(score[0]),
                            "all_consumers_ready": bool(score[1]),
                            "next_use_distance": -score[2],
                            "pending_consumers": score[3],
                        }
                    )
            return min(victims, key=rank)
    raise CoverageError(
        "register files exhausted but no spillable value exists "
        "(all live values pinned); the block cannot be covered"
    )


def _uncovered_ancestors(
    graph: TaskGraph, task_id: int, covered: Set[int]
) -> Set[int]:
    """``task_id`` plus every uncovered task it transitively depends on."""
    result: Set[int] = set()
    stack = [task_id]
    while stack:
        current = stack.pop()
        if current in result or current in covered:
            continue
        result.add(current)
        stack.extend(
            d
            for d in graph.tasks[current].dependencies()
            if d not in covered
        )
    return result


def _pick_focus(
    graph: TaskGraph,
    tracker: PressureTracker,
    bank: str,
    covered: Set[int],
) -> Optional[int]:
    """The blocked consumer to drive to completion: a pending consumer
    of the congested bank with the fewest uncovered prerequisites."""
    consumers: Set[int] = set()
    for delivery in tracker.live_deliveries(bank):
        consumers |= tracker.pending_consumers(delivery)
    consumers = {c for c in consumers if c in graph.tasks}
    if not consumers:
        return None
    return min(
        consumers,
        key=lambda c: (len(_uncovered_ancestors(graph, c, covered)), c),
    )


def _pick_spill(
    graph: TaskGraph,
    tracker: PressureTracker,
    candidates: List[FrozenSet[int]],
    covered: Set[int],
    ready: Set[int],
    stuck_strategy: str,
    explain: Optional[List[Dict[str, object]]] = None,
) -> Tuple[int, Optional[int], str]:
    """One register-starvation decision (paper Fig. 9): pick the focus
    consumer, the bank to relieve, and the delivery to spill.

    Shared verbatim by both covering kernels so the spill policy cannot
    drift between them.  Returns ``(victim, focus, focus_bank)``.
    """
    blocked = sorted(
        {b for c in candidates for b in tracker.blocked_banks(c)}
    )
    # Re-pick the focus at every stuck event: as the covering makes
    # partial progress, the nearest-to-ready blocked consumer changes
    # (it climbs the dependency subtree bottom-up), and protecting an
    # outdated focus's operands is what causes reload ping-pong.
    #
    # The sharpest signal is a READY task that is individually
    # infeasible: the bank refusing its arrival is exactly the one to
    # relieve, so drive that task and spill there.  Only when no such
    # task exists fall back to the nearest blocked consumer of the
    # most-contended bank.
    ready_infeasible = sorted(
        t for t in ready if not tracker.feasible({t})
    ) if stuck_strategy == "arrival" else []
    if ready_infeasible:

        def enables_soonest(task_id: int) -> tuple:
            # Prefer the blocked task whose own consumers are
            # nearest to executable — its delivery directly enables
            # the next operation rather than parking a value.
            consumer_distance = min(
                (
                    len(_uncovered_ancestors(graph, c, covered))
                    for c in graph.consumers_of(task_id)
                    if c in graph.tasks
                ),
                default=len(graph.tasks),
            )
            return (consumer_distance, task_id)

        focus = min(ready_infeasible, key=enables_soonest)
        focus_blocked = tracker.blocked_banks({focus})
        focus_bank = (
            focus_blocked[0]
            if focus_blocked
            else graph.tasks[focus].dest_storage
        )
    else:
        focus_bank = blocked[0] if blocked else max(
            tracker.banks(), key=lambda b: tracker.occupancy(b)
        )
        focus = _pick_focus(graph, tracker, focus_bank, covered)
    protected: Set[int] = set()
    if focus is not None:
        for member in _uncovered_ancestors(graph, focus, covered):
            for read in graph.tasks[member].reads:
                if read.producer is not None:
                    protected.add(read.producer)
    relieve = None
    if focus is not None and (not blocked or focus_bank in blocked):
        relieve = focus_bank
    victim = _choose_spill_victim(
        graph, tracker, candidates, covered, ready, protected, relieve, explain
    )
    return victim, focus, focus_bank


def cover_assignment(
    graph: TaskGraph,
    config: Optional[HeuristicConfig] = None,
    bound: Optional[int] = None,
    stuck_strategy: str = "consumer",
) -> Optional[CoverResult]:
    """Cover (and thereby schedule) every task of ``graph``.

    Args:
        graph: the assignment's task graph; mutated if spills are needed.
        config: heuristic settings.
        bound: branch-and-bound cut-off — return ``None`` as soon as the
            schedule reaches this length (a better solution is known).
        stuck_strategy: how a register-starved state picks its focus:
            ``"consumer"`` drives the blocked consumer nearest to ready
            (default); ``"arrival"`` drives the ready-but-infeasible
            delivery whose consumers are nearest to executable.  The
            engine retries a starved assignment with the other strategy,
            so between them pathological reload churn is broken from
            both directions.

    Returns:
        A :class:`CoverResult`, or ``None`` when pruned by ``bound``.
    """
    config = config or HeuristicConfig.default()
    tm = _telemetry()
    with tm.span("covering.cover", detail=stuck_strategy, category="covering"):
        # Search statistics live in a per-call CoverStats and are flushed
        # from the local in the ``finally`` below: the loop has several
        # exit paths (done, bound prune, starvation) and all of them must
        # report, while a module-level global would be clobbered by
        # nested or retried coverings.
        stats = CoverStats()
        try:
            if config.clique_kernel == "reference":
                result = _cover_loop(graph, config, bound, stuck_strategy, stats)
            else:
                result = _cover_loop_masks(
                    graph, config, bound, stuck_strategy, stats
                )
        finally:
            tm.count("cover.calls", 1)
            tm.count("cover.iterations", stats.iterations)
            tm.count("cover.stall_nops", stats.stall_nops)
            tm.count("cover.subset_fallbacks", stats.subset_fallbacks)
            tm.count("cover.lookahead_ties", stats.lookahead_ties)
            tm.count("cover.spill_rounds", stats.spill_rounds)
        if result is None:
            tm.count("cover.bound_prunes", 1)
        return result


def _cover_loop(
    graph: TaskGraph,
    config: HeuristicConfig,
    bound: Optional[int],
    stuck_strategy: str,
    stats: CoverStats,
) -> Optional[CoverResult]:
    """The reference covering loop: per-iteration ready recomputation,
    frozenset cliques, full clique rebuild after every spill."""
    jr = _telemetry().journal
    tracker = PressureTracker(graph)
    covered: Set[int] = set()
    schedule: List[List[int]] = []
    #: issue cycle of each covered task (for multi-cycle latencies).
    issue_cycle: Dict[int, int] = {}
    uncovered = set(graph.task_ids())
    cliques = _build_cliques(graph, sorted(uncovered), config)
    spills_done = 0
    focus: Optional[int] = None
    focus_bank: str = ""

    while uncovered:
        stats.iterations += 1
        if bound is not None and len(schedule) >= bound:
            return None
        now = len(schedule)
        ready = {
            t
            for t in uncovered
            if all(
                d in covered
                and issue_cycle[d] + graph.latency(d) <= now
                for d in graph.tasks[t].dependencies()
            )
        }
        if not ready:
            # Results still in flight (multi-cycle ops): stall one cycle.
            pending_latency = any(
                issue_cycle[d] + graph.latency(d) > now
                for t in uncovered
                for d in graph.tasks[t].dependencies()
                if d in covered
            )
            if pending_latency:
                stats.stall_nops += 1
                if jr.enabled:
                    jr.emit("cover.stall", cycle=now)
                schedule.append([])  # an explicit NOP word
                continue
            raise CoverageError("no ready task but tasks remain (cycle?)")
        if focus is not None and (
            focus in covered or focus not in graph.tasks
        ):
            focus = None  # the focused consumer executed (or was rewired)
        admissible = ready
        if focus is not None:
            # Reserve the congested bank for the focused consumer's own
            # dependency subtree: nothing else may deliver into it until
            # the consumer runs (prevents operand-delivery ping-pong).
            allowed = _uncovered_ancestors(graph, focus, covered)
            admissible = {
                t
                for t in ready
                if graph.tasks[t].dest_storage != focus_bank or t in allowed
            }
            if not admissible:
                admissible = ready  # nothing focusable is ready; relax
        candidates: List[FrozenSet[int]] = []
        seen: Set[FrozenSet[int]] = set()
        for clique in cliques:
            shrunk = frozenset(clique & admissible)
            if shrunk and shrunk not in seen:
                seen.add(shrunk)
                candidates.append(shrunk)
        feasible = [c for c in candidates if tracker.feasible(c)]
        via_subset = False
        if not feasible:
            # Try feasible subsets before resorting to a spill: a clique
            # may be blocked by one member only.
            subsets = {
                _feasible_subset(tracker, c) for c in candidates
            }
            feasible = [s for s in subsets if s]
            if feasible:
                stats.subset_fallbacks += 1
                via_subset = True
        if feasible:
            best_size = max(len(c) for c in feasible)
            top = [c for c in feasible if len(c) == best_size]
            tie = len(top) > 1 and config.lookahead
            if tie:
                stats.lookahead_ties += 1
                order = _uncovered_order(graph, uncovered)
                chosen = min(
                    top,
                    key=lambda c: (
                        _lookahead_estimate(graph, uncovered - c, order),
                        sorted(c),
                    ),
                )
            else:
                chosen = min(top, key=lambda c: sorted(c))
            if jr.enabled:
                _journal_step(
                    jr,
                    graph,
                    uncovered,
                    now,
                    sorted(chosen),
                    [sorted(c) for c in feasible],
                    [sorted(c) for c in top],
                    tie,
                    via_subset,
                )
            tracker.commit(chosen)
            covered |= chosen
            uncovered -= chosen
            for task_id in chosen:
                issue_cycle[task_id] = now
            schedule.append(sorted(chosen))
            continue
        # Spill path (paper Fig. 9).
        spills_done += 1
        stats.spill_rounds += 1
        if spills_done > config.max_spills:
            raise CoverageError(
                f"more than {config.max_spills} spills required; "
                f"register files are too small for this block"
            )
        explain = [] if jr.enabled else None
        victim, focus, focus_bank = _pick_spill(
            graph, tracker, candidates, covered, ready, stuck_strategy, explain
        )
        if jr.enabled:
            jr.emit(
                "cover.spill",
                cycle=now,
                victim=victim,
                victim_desc=graph.tasks[victim].describe(),
                focus=focus,
                focus_bank=focus_bank,
                candidates=explain,
            )
        graph.spill_delivery(victim, covered, ready=ready)
        uncovered = set(graph.task_ids()) - covered
        tracker.rebuild(schedule)
        cliques = _build_cliques(graph, sorted(uncovered), config)

    # A pinned value (branch condition) must have completed by the time
    # the control slot after the block body reads it: pad with NOPs if a
    # multi-cycle producer issued too late.
    for delivery in sorted(graph.pinned):
        available = issue_cycle[delivery] + graph.latency(delivery)
        while len(schedule) < available:
            schedule.append([])
    if bound is not None and len(schedule) >= bound:
        return None  # completed, but no better than the known solution
    return CoverResult(
        schedule=schedule,
        register_estimate=tracker.register_estimate(),
        spill_count=graph.spill_count,
        reload_count=graph.reload_count,
    )


class _MaskCliqueCache:
    """Legal clique masks over the current uncovered set, rebuilt
    incrementally after spills.

    After :meth:`rebuild`, only cliques whose members *touch* the
    rewired subgraph are re-enumerated.  Touched means the task's
    parallelism row changed (or the task is new/gone): an old maximal
    clique all of whose members kept their exact row is still maximal
    (its candidate mask — the AND of its members' rows — is unchanged,
    hence still empty), and conversely any maximal clique of the new
    graph lying entirely in untouched tasks has an identical
    clique/candidate structure in the old graph, so it is already in the
    cached list.  Cliques intersecting the touched set are re-found by
    the restricted Fig. 8 run (see ``_enumerate_clique_masks``).

    Budget semantics stay exact by construction: the incremental path is
    only trusted when the *total* clique count stays strictly below
    ``max_cliques`` (where the reference enumeration can never trip); in
    any other case — previous build tripped, restricted run tripped, or
    the merged total reaches the budget — it falls back to a full
    enumeration with the reference trip/top-up behavior.
    """

    def __init__(self) -> None:
        self.rows: Dict[int, int] = {}
        self.raw: List[int] = []
        self.tripped = False
        self.legal: List[int] = []

    def build(
        self, graph: TaskGraph, task_ids: List[int], config: HeuristicConfig
    ) -> None:
        """Full enumeration (initial build, or incremental fallback)."""
        self.rows = parallelism_masks(
            graph, task_ids, level_window=config.level_window
        )
        self.raw = generate_maximal_clique_masks(
            self.rows, config.max_cliques
        )
        self.tripped = (
            config.max_cliques is not None
            and len(self.raw) >= config.max_cliques
        )
        self.legal = legalize_clique_masks(graph, self.raw, graph.machine)

    def rebuild(
        self, graph: TaskGraph, task_ids: List[int], config: HeuristicConfig
    ) -> None:
        """Post-spill rebuild, incremental where provably exact."""
        if self.tripped:
            self.build(graph, task_ids, config)
            return
        new_rows = parallelism_masks(
            graph, task_ids, level_window=config.level_window
        )
        old_rows = self.rows
        untouched = 0
        touched = 0
        for task_id in task_ids:
            if old_rows.get(task_id) == new_rows[task_id]:
                untouched |= 1 << task_id
            else:
                touched |= 1 << task_id
        kept = [c for c in self.raw if not c & ~untouched]
        if touched:
            budget = None
            if config.max_cliques is not None:
                budget = config.max_cliques - len(kept)
            if budget is not None and budget <= 0:
                self.build(graph, task_ids, config)
                return
            fresh, tripped, _ = _enumerate_clique_masks(
                new_rows, budget, restrict=touched
            )
            if tripped or (
                config.max_cliques is not None
                and len(kept) + len(fresh) >= config.max_cliques
            ):
                self.build(graph, task_ids, config)
                return
        else:
            fresh = set()
        merged = kept + list(fresh)
        merged.sort(key=lambda m: (-popcount(m), bits(m)))
        self.rows = new_rows
        self.raw = merged
        self.tripped = False
        self.legal = legalize_clique_masks(graph, merged, graph.machine)
        tm = _telemetry()
        if tm.enabled:
            tm.count("cover.incremental_rebuilds", 1)
            tm.count("cliques.mask_kernel_calls", 1)
            tm.count("cliques.enumerated", len(fresh))
            tm.record("cliques.incremental_kept", len(kept))


class _ReadyState:
    """Incremental ready-set bookkeeping (bitmask kernel).

    ``ready_mask`` holds the tasks whose dependencies are all covered
    *and* complete (multi-cycle latencies included).  Tasks whose last
    dependency was just covered wait in an arrival heap until their
    latest operand's completion cycle, instead of the reference loop's
    full rescan per iteration.  After a spill rewires the graph the
    whole state is rebuilt (spills are rare; rewiring invalidates
    dependency counts wholesale).
    """

    def __init__(
        self,
        graph: TaskGraph,
        covered: Set[int],
        issue_cycle: Dict[int, int],
        now: int,
    ) -> None:
        self.reset(graph, covered, issue_cycle, now)

    def reset(
        self,
        graph: TaskGraph,
        covered: Set[int],
        issue_cycle: Dict[int, int],
        now: int,
    ) -> None:
        self.ready_mask = 0
        self.waiting: List[Tuple[int, int]] = []  # (ready_at, task) heap
        #: consumers of each *uncovered* producer, for dep countdown.
        self.consumers: Dict[int, List[int]] = {}
        self.deps: Dict[int, Set[int]] = {}
        self.unmet: Dict[int, int] = {}
        for task_id, task in graph.tasks.items():
            if task_id in covered:
                continue
            dep_set = set(task.dependencies())
            self.deps[task_id] = dep_set
            unmet = 0
            for dependency in dep_set:
                if dependency not in covered:
                    unmet += 1
                    self.consumers.setdefault(dependency, []).append(task_id)
            self.unmet[task_id] = unmet
            if unmet == 0:
                self._arm(graph, task_id, issue_cycle, now)

    def _arm(
        self,
        graph: TaskGraph,
        task_id: int,
        issue_cycle: Dict[int, int],
        now: int,
    ) -> None:
        ready_at = 0
        for dependency in self.deps[task_id]:
            done = issue_cycle[dependency] + graph.latency(dependency)
            if done > ready_at:
                ready_at = done
        if ready_at <= now:
            self.ready_mask |= 1 << task_id
        else:
            heapq.heappush(self.waiting, (ready_at, task_id))

    def advance(self, now: int) -> None:
        """Promote arrivals whose latest operand completed by ``now``."""
        while self.waiting and self.waiting[0][0] <= now:
            _, task_id = heapq.heappop(self.waiting)
            self.ready_mask |= 1 << task_id

    def commit(
        self,
        graph: TaskGraph,
        chosen: int,
        issue_cycle: Dict[int, int],
        now: int,
    ) -> None:
        """Mark the clique's members covered; arm freed consumers."""
        self.ready_mask &= ~chosen
        for member in iter_bits(chosen):
            for consumer in self.consumers.get(member, ()):
                self.unmet[consumer] -= 1
                if self.unmet[consumer] == 0:
                    self._arm(graph, consumer, issue_cycle, now)


def _cover_loop_masks(
    graph: TaskGraph,
    config: HeuristicConfig,
    bound: Optional[int],
    stuck_strategy: str,
    stats: CoverStats,
) -> Optional[CoverResult]:
    """The bitmask covering loop: decision-identical to
    :func:`_cover_loop`, with cliques and ready/admissible sets as ints,
    incremental ready maintenance, and incremental post-spill clique
    rebuilds."""
    jr = _telemetry().journal
    tracker = PressureTracker(graph)
    covered: Set[int] = set()
    schedule: List[List[int]] = []
    issue_cycle: Dict[int, int] = {}
    uncovered = set(graph.task_ids())
    uncovered_mask = mask_of(uncovered)
    cache = _MaskCliqueCache()
    cache.build(graph, sorted(uncovered), config)
    state = _ReadyState(graph, covered, issue_cycle, 0)
    dest_masks = _dest_masks(graph)
    spills_done = 0
    focus: Optional[int] = None
    focus_bank: str = ""

    while uncovered_mask:
        stats.iterations += 1
        if bound is not None and len(schedule) >= bound:
            return None
        now = len(schedule)
        state.advance(now)
        ready_mask = state.ready_mask
        if not ready_mask:
            # Results still in flight (multi-cycle ops): stall one cycle.
            # A non-empty arrival heap is exactly that; otherwise fall
            # back to the reference loop's scan, which also stalls for
            # in-flight operands of tasks with *other* unmet deps.
            pending_latency = bool(state.waiting) or any(
                issue_cycle[d] + graph.latency(d) > now
                for t in iter_bits(uncovered_mask)
                for d in graph.tasks[t].dependencies()
                if d in covered
            )
            if pending_latency:
                stats.stall_nops += 1
                if jr.enabled:
                    jr.emit("cover.stall", cycle=now)
                schedule.append([])  # an explicit NOP word
                continue
            raise CoverageError("no ready task but tasks remain (cycle?)")
        if focus is not None and (
            focus in covered or focus not in graph.tasks
        ):
            focus = None  # the focused consumer executed (or was rewired)
        admissible_mask = ready_mask
        if focus is not None:
            allowed = mask_of(_uncovered_ancestors(graph, focus, covered))
            admissible_mask = ready_mask & (
                ~dest_masks.get(focus_bank, 0) | allowed
            )
            if not admissible_mask:
                admissible_mask = ready_mask  # nothing focusable; relax
        candidates: List[int] = []
        seen: Set[int] = set()
        for clique in cache.legal:
            shrunk = clique & admissible_mask
            if shrunk and shrunk not in seen:
                seen.add(shrunk)
                candidates.append(shrunk)
        as_set = {c: frozenset(iter_bits(c)) for c in candidates}
        feasible = [c for c in candidates if tracker.feasible(as_set[c])]
        via_subset = False
        if not feasible:
            subsets = {
                mask_of(_feasible_subset(tracker, as_set[c]))
                for c in candidates
            }
            feasible = [s for s in subsets if s]
            if feasible:
                stats.subset_fallbacks += 1
                via_subset = True
        if feasible:
            best_size = max(popcount(c) for c in feasible)
            top = [c for c in feasible if popcount(c) == best_size]
            tie = len(top) > 1 and config.lookahead
            if tie:
                stats.lookahead_ties += 1
                order = _uncovered_order(graph, uncovered)
                chosen = min(
                    top,
                    key=lambda c: (
                        _lookahead_estimate(
                            graph,
                            set(iter_bits(uncovered_mask & ~c)),
                            order,
                        ),
                        bits(c),
                    ),
                )
            else:
                chosen = min(top, key=bits)
            chosen_ids = bits(chosen)
            if jr.enabled:
                _journal_step(
                    jr,
                    graph,
                    uncovered,
                    now,
                    list(chosen_ids),
                    [list(bits(c)) for c in feasible],
                    [list(bits(c)) for c in top],
                    tie,
                    via_subset,
                )
            tracker.commit(chosen_ids)
            covered.update(chosen_ids)
            uncovered.difference_update(chosen_ids)
            uncovered_mask &= ~chosen
            for task_id in chosen_ids:
                issue_cycle[task_id] = now
            state.commit(graph, chosen, issue_cycle, now)
            schedule.append(chosen_ids)
            continue
        # Spill path (paper Fig. 9).
        spills_done += 1
        stats.spill_rounds += 1
        if spills_done > config.max_spills:
            raise CoverageError(
                f"more than {config.max_spills} spills required; "
                f"register files are too small for this block"
            )
        ready = set(iter_bits(ready_mask))
        candidate_sets = [as_set[c] for c in candidates]
        explain = [] if jr.enabled else None
        victim, focus, focus_bank = _pick_spill(
            graph, tracker, candidate_sets, covered, ready, stuck_strategy,
            explain,
        )
        if jr.enabled:
            jr.emit(
                "cover.spill",
                cycle=now,
                victim=victim,
                victim_desc=graph.tasks[victim].describe(),
                focus=focus,
                focus_bank=focus_bank,
                candidates=explain,
            )
        graph.spill_delivery(victim, covered, ready=ready)
        uncovered = set(graph.task_ids()) - covered
        uncovered_mask = mask_of(uncovered)
        tracker.rebuild(schedule)
        cache.rebuild(graph, sorted(uncovered), config)
        state.reset(graph, covered, issue_cycle, now)
        dest_masks = _dest_masks(graph)

    for delivery in sorted(graph.pinned):
        available = issue_cycle[delivery] + graph.latency(delivery)
        while len(schedule) < available:
            schedule.append([])
    if bound is not None and len(schedule) >= bound:
        return None  # completed, but no better than the known solution
    return CoverResult(
        schedule=schedule,
        register_estimate=tracker.register_estimate(),
        spill_count=graph.spill_count,
        reload_count=graph.reload_count,
    )


def _dest_masks(graph: TaskGraph) -> Dict[str, int]:
    """Per-storage-bank mask of the tasks delivering into it."""
    masks: Dict[str, int] = {}
    for task_id, task in graph.tasks.items():
        if task.dest_storage is not None:
            masks[task.dest_storage] = (
                masks.get(task.dest_storage, 0) | (1 << task_id)
            )
    return masks
