"""Exploring split-node functional-unit assignments (paper, Section IV-A).

The number of complete assignments grows multiplicatively with the block
size, so the search is pruned with an *incremental cost* charged when a
split node is bound to an alternative.  The cost captures the two factors
the paper names: data transfers the binding makes necessary, and
parallelism it forgoes.

Split nodes are bound "in order of increasing level from the top of the
Split-Node DAG"; at each node, only minimum-incremental-cost alternatives
survive (Fig. 6's pruning) unless pruning is disabled, and finally the
``num_assignments`` cheapest complete assignments are selected for
in-depth covering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.ir.dag import BlockDAG
from repro.ir.ops import Opcode, is_leaf
from repro.isdl.model import Machine
from repro.covering.config import HeuristicConfig
from repro.sndag.build import SplitNodeDAG
from repro.sndag.nodes import Alternative
from repro.telemetry.session import current as _telemetry
from repro.utils.graph import transitive_closure


@dataclass(frozen=True)
class Assignment:
    """A complete split-node covering assignment.

    ``choice`` maps each original operation id to the alternative that
    covers it.  Operations absorbed into a complex instruction map to the
    *root's* alternative (so every operation id is a key).
    """

    choice: Dict[int, Alternative]
    cost: int

    def unit_of(self, op_id: int) -> str:
        """Functional unit covering the given operation."""
        return self.choice[op_id].unit

    def covering_ops(self) -> List[Tuple[int, Alternative]]:
        """(root op id, alternative) pairs, one per emitted machine op."""
        seen: Set[int] = set()
        result: List[Tuple[int, Alternative]] = []
        for op_id in sorted(self.choice):
            alternative = self.choice[op_id]
            root = alternative.covers[0]
            if root not in seen:
                seen.add(root)
                result.append((root, alternative))
        return result

    def signature(self) -> Tuple[Tuple[int, str, str], ...]:
        """Hashable identity used to deduplicate assignments."""
        return tuple(
            (op_id, alt.unit, alt.op_name)
            for op_id, alt in sorted(self.choice.items())
        )


@dataclass
class _Partial:
    """A partial assignment open during exploration."""

    choice: Dict[int, Alternative]
    cost: int
    #: op ids absorbed by an already-chosen complex alternative
    absorbed: Set[int] = field(default_factory=set)


class _CostModel:
    """Computes the incremental cost of binding one split node."""

    def __init__(
        self, sn: SplitNodeDAG, config: Optional[HeuristicConfig] = None
    ):
        self.config = config or HeuristicConfig.default()
        self.sn = sn
        self.machine = sn.machine
        self.dag = sn.dag
        self.consumers = self.dag.consumers()
        # Dependence between operations: q depends on s if s is reachable
        # from q through operand edges.
        closure = transitive_closure(self.dag.adjacency())
        self._descendants = closure

    def independent(self, a: int, b: int) -> bool:
        """True when no dependence path connects the two original nodes."""
        return b not in self._descendants[a] and a not in self._descendants[b]

    def distance(self, source: str, destination: str) -> int:
        """Bus-hop distance between two storages.

        Answered straight from the transfer database's BFS distance
        table — the database caches per-source tables itself, so the
        local memo this model used to keep is gone.
        """
        return self.sn.transfer_db.distance(source, destination)

    def incremental_cost(
        self, partial: _Partial, op_id: int, alternative: Alternative
    ) -> int:
        """Transfers made necessary plus parallelism foregone (Fig. 6).

        - one unit of cost per bus hop needed to deliver this node's
          value to each already-assigned consumer (and to memory for each
          store consumer);
        - one unit per bus hop needed to load each *leaf* operand of the
          alternative from data memory;
        - one unit for each already-assigned, dependence-independent
          operation placed on the same unit (a grouping opportunity
          irrevocably lost).
        """
        machine = self.machine
        rf = machine.unit(alternative.unit).register_file
        cost = 0
        covered = set(alternative.covers)
        # Transfers to already-assigned consumers of the produced value.
        root = alternative.covers[0]
        for consumer_id in self.consumers.get(root, ()):  # users of root's value
            consumer = self.dag.node(consumer_id)
            if consumer.opcode is Opcode.STORE:
                cost += self.distance(rf, machine.data_memory)
                continue
            chosen = partial.choice.get(consumer_id)
            if chosen is None or consumer_id in covered:
                continue
            consumer_rf = machine.unit(chosen.unit).register_file
            cost += self.distance(rf, consumer_rf)
        # Loads for leaf operands of the alternative.
        operand_ids = self._operands_of(op_id, alternative)
        for operand_id in operand_ids:
            if is_leaf(self.dag.node(operand_id).opcode):
                cost += self.distance(machine.data_memory, rf)
        # Parallelism foregone against every already-assigned operation.
        for other_id, other_alt in partial.choice.items():
            if other_id in covered or other_id in partial.absorbed:
                continue
            if other_alt.unit != alternative.unit:
                continue
            if other_alt.covers[0] != other_id:
                continue  # only the root of a complex op occupies the unit
            if self.independent(other_id, root):
                cost += 1
        if self.config.register_aware_assignment:
            cost += self._register_penalty(partial, root, alternative)
        return cost

    def _register_penalty(
        self, partial: _Partial, root: int, alternative: Alternative
    ) -> int:
        """Penalty for likely spills (the paper's ongoing-work extension).

        Estimates how many values could be simultaneously live in the
        unit's register bank: this operation's result plus every value
        already produced on the same unit by an operation with no
        dependence path to this one (an independent producer's value may
        overlap ours).  Each value beyond the bank's capacity costs
        ``spill_penalty`` units, steering the beam away from assignments
        the covering step would have to rescue with loads and spills.
        """
        machine = self.machine
        bank_size = machine.rf_of_unit(alternative.unit).size
        overlapping = 1  # our own result
        for other_id, other_alt in partial.choice.items():
            if other_id in partial.absorbed:
                continue
            if other_alt.unit != alternative.unit:
                continue
            if other_alt.covers[0] != other_id:
                continue
            if self.independent(other_id, root):
                overlapping += 1
        excess = overlapping - bank_size
        if excess <= 0:
            return 0
        return excess * self.config.spill_penalty

    def _operands_of(
        self, op_id: int, alternative: Alternative
    ) -> Tuple[int, ...]:
        if not alternative.from_pattern:
            return self.dag.node(op_id).operands
        # Complex alternative: external operands are those found by the
        # pattern matcher.
        for match in self.sn.pattern_matches:
            if (
                match.root == op_id
                and match.unit == alternative.unit
                and match.op.name == alternative.op_name
            ):
                return match.operands
        return self.dag.node(op_id).operands


def explore_assignments(
    sn: SplitNodeDAG, config: Optional[HeuristicConfig] = None
) -> List[Assignment]:
    """Enumerate complete assignments, cheapest first.

    With ``config.assignment_pruning`` the per-node minimum-incremental-
    cost rule prunes the search (Fig. 6); the returned list is truncated
    to ``config.num_assignments``.
    """
    config = config or HeuristicConfig.default()
    tm = _telemetry()
    jr = tm.journal
    with tm.span("covering.assignments", category="covering"):
        model = _CostModel(sn, config)
        dag = sn.dag
        # Level from the top: process shallow (root-side) nodes first.
        depth = dag.depth_from_roots()
        op_ids = sorted(
            sn.alternatives_of,
            key=lambda op_id: (depth[op_id], op_id),
        )
        # Search statistics accumulate in locals (one counter flush at
        # the end) so the hot loop stays probe-free.
        alternatives_scored = 0
        pruned_min_cost = 0
        beam_truncated = 0
        frontier: List[_Partial] = [_Partial(choice={}, cost=0)]
        for op_id in op_ids:
            next_frontier: List[_Partial] = []
            for partial_index, partial in enumerate(frontier):
                if op_id in partial.absorbed:
                    next_frontier.append(partial)
                    continue
                scored: List[Tuple[int, Alternative]] = []
                for alternative in sn.alternatives(op_id):
                    if any(c in partial.absorbed for c in alternative.covers):
                        continue
                    increment = model.incremental_cost(partial, op_id, alternative)
                    scored.append((increment, alternative))
                alternatives_scored += len(scored)
                if not scored:
                    continue  # no usable alternative under this partial
                best: Optional[int] = None
                if config.assignment_pruning:
                    best = min(increment for increment, _ in scored)
                    kept = [item for item in scored if item[0] == best]
                    pruned_min_cost += len(scored) - len(kept)
                else:
                    kept = scored
                if jr.enabled and len(scored) > 1:
                    jr.emit(
                        "assignment.bind",
                        op=op_id,
                        partial=partial_index,
                        alternatives=sorted(
                            (
                                {
                                    "unit": alt.unit,
                                    "op": alt.op_name,
                                    "cost": cost,
                                    "kept": best is None or cost == best,
                                }
                                for cost, alt in scored
                            ),
                            key=lambda a: (a["cost"], a["unit"], a["op"]),
                        ),
                    )
                scored = kept
                for increment, alternative in scored:
                    choice = dict(partial.choice)
                    for covered_id in alternative.covers:
                        choice[covered_id] = alternative
                    absorbed = set(partial.absorbed)
                    absorbed.update(alternative.covers[1:])
                    next_frontier.append(
                        _Partial(choice, partial.cost + increment, absorbed)
                    )
            if config.frontier_limit is not None and len(next_frontier) > config.frontier_limit:
                next_frontier.sort(key=lambda p: p.cost)
                dropped = len(next_frontier) - config.frontier_limit
                beam_truncated += dropped
                if jr.enabled:
                    jr.emit(
                        "assignment.beam",
                        op=op_id,
                        limit=config.frontier_limit,
                        dropped=dropped,
                        kept_max_cost=next_frontier[config.frontier_limit - 1].cost,
                        dropped_min_cost=next_frontier[config.frontier_limit].cost,
                    )
                next_frontier = next_frontier[: config.frontier_limit]
            frontier = next_frontier
            if tm.enabled:
                tm.record("assign.beam_occupancy", len(frontier))
        complete = [
            Assignment(choice=partial.choice, cost=partial.cost)
            for partial in frontier
            if len(partial.choice) == len(sn.alternatives_of)
        ]
        complete.sort(key=lambda a: (a.cost, a.signature()))
        deduped: List[Assignment] = []
        seen: Set[Tuple] = set()
        for assignment in complete:
            signature = assignment.signature()
            if signature not in seen:
                seen.add(signature)
                deduped.append(assignment)
        if config.num_assignments is not None:
            deduped = deduped[: config.num_assignments]
        if jr.enabled:
            jr.emit(
                "assignment.select",
                complete=len(complete),
                selected=len(deduped),
                costs=[a.cost for a in deduped],
            )
    tm.count("assign.split_nodes_bound", len(op_ids))
    tm.count("assign.alternatives_scored", alternatives_scored)
    tm.count("assign.pruned_min_cost", pruned_min_cost)
    tm.count("assign.beam_truncated", beam_truncated)
    tm.count("assign.complete", len(complete))
    tm.count("assign.selected", len(deduped))
    return deduped
