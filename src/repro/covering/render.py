"""Visualisation helpers for task graphs and schedules."""

from __future__ import annotations

from typing import Dict, List

from repro.covering.solution import BlockSolution
from repro.covering.taskgraph import TaskGraph, TaskKind


def task_graph_to_dot(graph: TaskGraph, name: str = "tasks") -> str:
    """Graphviz DOT of an assignment's task graph.

    Operation tasks are ellipses labelled ``OP@UNIT``; transfers are
    boxes (spills/reloads tinted); solid edges are data flow, dashed
    edges are store anti-dependences.
    """
    lines = [f"digraph {name} {{", "  rankdir=BT;"]
    for task_id in graph.task_ids():
        task = graph.tasks[task_id]
        if task.kind is TaskKind.OP:
            shape, color = "ellipse", "white"
        elif task.is_spill:
            shape, color = "box", "lightcoral"
        elif task.is_reload:
            shape, color = "box", "lightblue"
        else:
            shape, color = "box", "lightgrey"
        label = task.describe().replace('"', "'")
        lines.append(
            f'  t{task_id} [label="{label}", shape={shape}, '
            f'style=filled, fillcolor={color}];'
        )
    for task_id in graph.task_ids():
        task = graph.tasks[task_id]
        for read in task.reads:
            if read.producer is not None:
                lines.append(f"  t{task_id} -> t{read.producer};")
        for blocker in task.extra_after:
            lines.append(
                f"  t{task_id} -> t{blocker} [style=dashed];"
            )
    lines.append("}")
    return "\n".join(lines)


def schedule_table(solution: BlockSolution) -> str:
    """A cycle-by-resource table of the scheduled block (a textual
    Gantt chart): one row per instruction, one column per functional
    unit and bus."""
    graph = solution.graph
    machine = graph.machine
    resources = machine.unit_names() + machine.bus_names()
    width = max(
        [len(r) for r in resources]
        + [
            len(_cell(graph, t))
            for members in solution.schedule
            for t in members
        ]
        + [4]
    )
    header = "cycle  " + "  ".join(r.ljust(width) for r in resources)
    lines = [header, "-" * len(header)]
    for cycle, members in enumerate(solution.schedule):
        by_resource: Dict[str, str] = {}
        for task_id in members:
            task = graph.tasks[task_id]
            by_resource[task.resource] = _cell(graph, task_id)
        row = f"{cycle:5d}  " + "  ".join(
            by_resource.get(r, "").ljust(width) for r in resources
        )
        lines.append(row.rstrip())
    return "\n".join(lines)


def _cell(graph: TaskGraph, task_id: int) -> str:
    task = graph.tasks[task_id]
    if task.kind is TaskKind.OP:
        return f"{task.op_name} n{task.value}"
    tag = "S!" if task.is_spill else ("L!" if task.is_reload else "")
    if task.store_symbol:
        return f"{tag}st {task.store_symbol}"
    return f"{tag}n{task.value}>{task.dest_storage}"


def utilization(solution: BlockSolution) -> Dict[str, float]:
    """Fraction of cycles each resource is busy (slot utilisation) —
    the quantity an architect reads off when trimming a datapath."""
    graph = solution.graph
    machine = graph.machine
    cycles = max(1, solution.instruction_count)
    busy: Dict[str, int] = {
        r: 0 for r in machine.unit_names() + machine.bus_names()
    }
    for members in solution.schedule:
        for task_id in members:
            busy[graph.tasks[task_id].resource] += 1
    return {resource: count / cycles for resource, count in busy.items()}
