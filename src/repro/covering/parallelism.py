"""The pairwise-parallelism matrix (paper, Section IV-C.1, Fig. 7).

Element ``[i, j]`` is 0 when tasks i and j can execute in the same
instruction and 1 otherwise.  Two tasks conflict when they share a
resource (the same functional unit or the same bus) or when a dependence
path connects them.  The optional level-window heuristic (IV-C.2)
additionally marks pairs whose levels from the top/bottom of the
assignment's task DAG differ too much, which shrinks the clique space.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.covering.taskgraph import TaskGraph
from repro.utils.graph import (
    descendant_masks,
    longest_path_lengths,
    transitive_closure,
)


def task_levels(
    graph: TaskGraph, task_ids: List[int]
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """(level from top, level from bottom) of each task.

    Levels are longest-path distances in the dependence DAG restricted to
    ``task_ids``: bottom = toward producers, top = toward final
    consumers.
    """
    members = set(task_ids)
    down: Dict[int, List[int]] = {
        t: [d for d in graph.tasks[t].dependencies() if d in members]
        for t in task_ids
    }
    up: Dict[int, List[int]] = {t: [] for t in task_ids}
    for task_id in task_ids:
        for dependency in down[task_id]:
            up[dependency].append(task_id)
    from_bottom = longest_path_lengths(down)
    from_top = longest_path_lengths(up)
    return from_top, from_bottom


def parallelism_matrix(
    graph: TaskGraph,
    task_ids: Optional[List[int]] = None,
    level_window: Optional[int] = None,
) -> Tuple[np.ndarray, List[int]]:
    """Build the conflict matrix over ``task_ids`` (default: all tasks).

    Returns ``(matrix, index_to_task_id)``; ``matrix[i, j] == 0`` means
    the i-th and j-th tasks may share an instruction.  The diagonal is 1
    (a node is not "parallel with itself" — cliques add each node once).
    """
    if task_ids is None:
        task_ids = graph.task_ids()
    size = len(task_ids)
    matrix = np.zeros((size, size), dtype=np.uint8)
    members = set(task_ids)
    adjacency = {
        t: [d for d in graph.tasks[t].dependencies() if d in members]
        for t in task_ids
    }
    descendants = transitive_closure(adjacency)
    if level_window is not None:
        from_top, from_bottom = task_levels(graph, task_ids)
    for i in range(size):
        matrix[i, i] = 1
        task_i = graph.tasks[task_ids[i]]
        for j in range(i + 1, size):
            task_j = graph.tasks[task_ids[j]]
            conflict = False
            if task_i.resource == task_j.resource:
                conflict = True
            elif (
                task_ids[j] in descendants[task_ids[i]]
                or task_ids[i] in descendants[task_ids[j]]
            ):
                conflict = True
            elif level_window is not None:
                if (
                    abs(from_top[task_ids[i]] - from_top[task_ids[j]])
                    > level_window
                    or abs(from_bottom[task_ids[i]] - from_bottom[task_ids[j]])
                    > level_window
                ):
                    conflict = True
            if conflict:
                matrix[i, j] = 1
                matrix[j, i] = 1
    return matrix, list(task_ids)


def parallelism_masks(
    graph: TaskGraph,
    task_ids: Optional[List[int]] = None,
    level_window: Optional[int] = None,
) -> Dict[int, int]:
    """The parallel relation as integer bitmasks in *task-id* space.

    Returns ``{task_id: row}`` where bit ``t`` of ``row`` is set exactly
    when :func:`parallelism_matrix` would mark the pair parallel (0).
    Bits of tasks outside ``task_ids`` — and the diagonal — are never
    set, so ``row & full`` is a no-op and clique masks stay inside the
    working set.

    Same relation, different build: resource conflicts come from one OR
    per resource group, dependence conflicts from bitmask transitive
    closures (both directions), and the level-window heuristic from
    per-level bucket masks with prefix ORs — no Python pair loop.
    """
    if task_ids is None:
        task_ids = graph.task_ids()
    full = 0
    for task_id in task_ids:
        full |= 1 << task_id
    members = set(task_ids)
    position = {t: t for t in task_ids}
    adjacency = {
        t: [d for d in graph.tasks[t].dependencies() if d in members]
        for t in task_ids
    }
    reverse: Dict[int, List[int]] = {t: [] for t in task_ids}
    for task_id in task_ids:
        for dependency in adjacency[task_id]:
            reverse[dependency].append(task_id)
    descendants = descendant_masks(adjacency, position)
    ancestors = descendant_masks(reverse, position)
    by_resource: Dict[str, int] = {}
    for task_id in task_ids:
        resource = graph.tasks[task_id].resource
        by_resource[resource] = by_resource.get(resource, 0) | (1 << task_id)
    allowed_top: Dict[int, int] = {}
    allowed_bottom: Dict[int, int] = {}
    if level_window is not None:
        from_top, from_bottom = task_levels(graph, task_ids)
        for levels, allowed in (
            (from_top, allowed_top),
            (from_bottom, allowed_bottom),
        ):
            top = max(levels[t] for t in task_ids) if task_ids else 0
            buckets = [0] * (top + 1)
            for task_id in task_ids:
                buckets[levels[task_id]] |= 1 << task_id
            prefix = [0] * (top + 2)  # prefix[l+1] = OR of levels <= l
            for level in range(top + 1):
                prefix[level + 1] = prefix[level] | buckets[level]
            for task_id in task_ids:
                level = levels[task_id]
                high = prefix[min(level + level_window, top) + 1]
                low = prefix[max(level - level_window, 0)]
                allowed[task_id] = high & ~low
    rows: Dict[int, int] = {}
    for task_id in task_ids:
        conflict = (
            by_resource[graph.tasks[task_id].resource]
            | descendants[task_id]
            | ancestors[task_id]
            | (1 << task_id)
        )
        row = full & ~conflict
        if level_window is not None:
            row &= allowed_top[task_id] & allowed_bottom[task_id]
        rows[task_id] = row
    return rows
