"""The pairwise-parallelism matrix (paper, Section IV-C.1, Fig. 7).

Element ``[i, j]`` is 0 when tasks i and j can execute in the same
instruction and 1 otherwise.  Two tasks conflict when they share a
resource (the same functional unit or the same bus) or when a dependence
path connects them.  The optional level-window heuristic (IV-C.2)
additionally marks pairs whose levels from the top/bottom of the
assignment's task DAG differ too much, which shrinks the clique space.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.covering.taskgraph import TaskGraph
from repro.utils.graph import longest_path_lengths, transitive_closure


def task_levels(
    graph: TaskGraph, task_ids: List[int]
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """(level from top, level from bottom) of each task.

    Levels are longest-path distances in the dependence DAG restricted to
    ``task_ids``: bottom = toward producers, top = toward final
    consumers.
    """
    members = set(task_ids)
    down: Dict[int, List[int]] = {
        t: [d for d in graph.tasks[t].dependencies() if d in members]
        for t in task_ids
    }
    up: Dict[int, List[int]] = {t: [] for t in task_ids}
    for task_id in task_ids:
        for dependency in down[task_id]:
            up[dependency].append(task_id)
    from_bottom = longest_path_lengths(down)
    from_top = longest_path_lengths(up)
    return from_top, from_bottom


def parallelism_matrix(
    graph: TaskGraph,
    task_ids: Optional[List[int]] = None,
    level_window: Optional[int] = None,
) -> Tuple[np.ndarray, List[int]]:
    """Build the conflict matrix over ``task_ids`` (default: all tasks).

    Returns ``(matrix, index_to_task_id)``; ``matrix[i, j] == 0`` means
    the i-th and j-th tasks may share an instruction.  The diagonal is 1
    (a node is not "parallel with itself" — cliques add each node once).
    """
    if task_ids is None:
        task_ids = graph.task_ids()
    size = len(task_ids)
    matrix = np.zeros((size, size), dtype=np.uint8)
    members = set(task_ids)
    adjacency = {
        t: [d for d in graph.tasks[t].dependencies() if d in members]
        for t in task_ids
    }
    descendants = transitive_closure(adjacency)
    if level_window is not None:
        from_top, from_bottom = task_levels(graph, task_ids)
    for i in range(size):
        matrix[i, i] = 1
        task_i = graph.tasks[task_ids[i]]
        for j in range(i + 1, size):
            task_j = graph.tasks[task_ids[j]]
            conflict = False
            if task_i.resource == task_j.resource:
                conflict = True
            elif (
                task_ids[j] in descendants[task_ids[i]]
                or task_ids[i] in descendants[task_ids[j]]
            ):
                conflict = True
            elif level_window is not None:
                if (
                    abs(from_top[task_ids[i]] - from_top[task_ids[j]])
                    > level_window
                    or abs(from_bottom[task_ids[i]] - from_bottom[task_ids[j]])
                    > level_window
                ):
                    conflict = True
            if conflict:
                matrix[i, j] = 1
                matrix[j, i] = 1
    return matrix, list(task_ids)
