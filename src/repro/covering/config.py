"""Heuristic configuration for the covering engine.

"AVIV incorporates multiple heuristics that can be turned off if
desired" (paper, Section VI).  Table I's parenthesised columns are the
same engine with :meth:`HeuristicConfig.heuristics_off`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class HeuristicConfig:
    """Tunable knobs of the covering engine.

    Attributes:
        assignment_pruning: prune the functional-unit-assignment search
            at each split node to the minimum-incremental-cost
            alternatives (Fig. 6's "X" marks).  Off = keep every
            alternative at every node.
        num_assignments: how many lowest-cost complete assignments to
            explore in depth ("select several lowest cost assignments").
            ``None`` = explore all complete assignments found.
        frontier_limit: safety cap on simultaneously-open partial
            assignments during exploration (lowest accumulated cost
            kept).  ``None`` = unbounded.
        level_window: the IV-C.2 clique-reduction heuristic — two nodes
            may only be grouped when both their level-from-top and
            level-from-bottom differ by at most this much.  ``None`` =
            heuristic off (all pairwise-parallel nodes may merge).
        lookahead: break covering ties with the estimated number of
            cliques still required (IV-D).  Off = first-found wins.
        branch_and_bound: abandon covering an assignment as soon as its
            instruction count reaches the best complete solution so far.
        max_spills: hard cap on spill insertions per assignment, to turn
            pathological register starvation into an error instead of an
            unbounded loop.
        max_cliques: budget for maximal-clique enumeration per covering
            round (the paper's "most time consuming portion"); when
            exceeded, covering proceeds with the cliques found so far
            plus singletons.  ``None`` = unbounded.
        register_aware_assignment: the paper's stated ongoing work —
            "modifying the initial functional unit assignment cost
            function to incorporate register resource limits so that it
            can detect assignments that are likely to require spills".
            When on, binding an operation to a unit whose register bank
            is already oversubscribed by the partial assignment incurs
            ``spill_penalty`` per excess value.
        spill_penalty: cost units charged per value expected to exceed a
            register bank's capacity (only with
            ``register_aware_assignment``).
        clique_kernel: which clique/covering hot-path implementation to
            use.  ``"bitmask"`` (default) runs the integer-bitset kernel
            with incremental ready-set maintenance and incremental
            post-spill clique rebuilds; ``"reference"`` runs the original
            numpy/set implementation.  Both produce bit-identical
            schedules (enforced differentially by the ``hotpath`` tests
            and a fuzz-oracle pass).
        sndag_mode: how the Split-Node DAG materialises transfer
            alternatives.  ``"lazy"`` (default) creates TRANSFER node
            chains on demand — only for the movements chosen assignments
            actually perform, with equivalent-cost minimal paths folded
            into canonical representatives; ``"eager"`` expands every
            multi-hop path between every reachable storage pair up front
            (the paper's construction), kept as a bit-identical
            differential oracle the same way ``clique_kernel`` keeps the
            reference kernel.
    """

    assignment_pruning: bool = True
    num_assignments: Optional[int] = 8
    frontier_limit: Optional[int] = 128
    level_window: Optional[int] = 2
    lookahead: bool = True
    branch_and_bound: bool = True
    max_spills: int = 64
    max_cliques: Optional[int] = 20_000
    register_aware_assignment: bool = False
    spill_penalty: int = 2
    clique_kernel: str = "bitmask"
    sndag_mode: str = "lazy"

    def __post_init__(self) -> None:
        if self.clique_kernel not in ("bitmask", "reference"):
            raise ValueError(
                f"unknown clique_kernel {self.clique_kernel!r}; "
                f"expected 'bitmask' or 'reference'"
            )
        if self.sndag_mode not in ("lazy", "eager"):
            raise ValueError(
                f"unknown sndag_mode {self.sndag_mode!r}; "
                f"expected 'lazy' or 'eager'"
            )

    @classmethod
    def default(cls) -> "HeuristicConfig":
        """The configuration used for the paper's headline columns."""
        return cls()

    @classmethod
    def heuristics_off(cls, frontier_limit: Optional[int] = None) -> "HeuristicConfig":
        """Exhaustive assignment exploration, no clique reduction.

        This mirrors Table I's parenthesised runs: all split-node
        assignments are generated and explored, and the level-window
        clique heuristic is disabled.  Note (as the paper does) that this
        still "does not result in an exact algorithm ... since we do not
        explore all possible schedules".
        """
        return cls(
            assignment_pruning=False,
            num_assignments=None,
            frontier_limit=frontier_limit,
            level_window=None,
            lookahead=True,
            branch_and_bound=True,
        )

    def with_(self, **changes) -> "HeuristicConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)
