"""Materialising an assignment as a graph of schedulable tasks.

A *task* is one resource-occupying action the machine can perform in one
instruction slot:

- an **OP** task executes a machine operation on a functional unit,
  reading operands from the unit's register file and writing the result
  back to it;
- an **XFER** task moves one word across one bus hop — loading a leaf
  value from data memory, forwarding an intermediate result between
  register files, writing a stored value back to memory, or (after spill
  insertion) spilling and reloading.

Tasks carry :class:`ReadRef` edges naming which task delivered each value
they consume (``producer is None`` for values resident in data memory at
block entry).  The covering step schedules tasks into cliques; pressure
tracking, register allocation, and assembly emission are all phrased in
terms of *deliveries*: a task that writes into a register file creates a
register-resident value whose lifetime ends at its last consumer.

Spilling (paper Fig. 9): :meth:`TaskGraph.spill_delivery` inserts a spill
transfer of a register-resident value to data memory, replaces pending
transfers of the value ("transfer nodes that are no longer required are
removed") with reloads from memory, and rewires remaining consumers.

Transfer-path selection (paper, Section IV-B): when the machine offers
several minimal paths between two storages, the builder picks the one
whose buses currently carry the fewest transfers — a parallelism-driven
choice, since congested buses serialise instructions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import CoverageError
from repro.ir.dag import BlockDAG
from repro.ir.ops import Opcode, is_leaf
from repro.isdl.databases import TransferPath
from repro.isdl.model import Machine
from repro.covering.assignment import Assignment
from repro.sndag.build import SplitNodeDAG
from repro.telemetry.session import current as _telemetry
from repro.utils.ids import IdAllocator


class TaskKind(enum.Enum):
    """Task categories: functional-unit OPs and bus XFERs."""
    OP = "op"
    XFER = "xfer"


@dataclass(frozen=True)
class ReadRef:
    """One value a task consumes.

    Attributes:
        producer: id of the task that delivered the value into
            ``storage`` — ``None`` when the value has been in data memory
            since block entry (leaves and constants).
        storage: the storage location the value is read from.
        value: original-DAG id of the value being read.
    """

    producer: Optional[int]
    storage: str
    value: int


@dataclass
class Task:
    """One schedulable action.  See module docstring."""

    task_id: int
    kind: TaskKind
    resource: str  # functional unit for OP, bus for XFER
    value: int  # original-DAG id of the produced / moved value
    reads: Tuple[ReadRef, ...]
    dest_storage: str  # register file, or a memory for stores/spills
    # OP payload:
    unit: Optional[str] = None
    op_name: Optional[str] = None
    covers: Tuple[int, ...] = ()
    # XFER payload:
    bus: Optional[str] = None
    source_storage: Optional[str] = None
    store_symbol: Optional[str] = None  # set on store transfers
    is_spill: bool = False
    is_reload: bool = False
    #: anti-dependences: tasks that must execute before this one even
    #: though no value flows between them (a store overwriting a
    #: variable must wait for every reader of its entry value).
    extra_after: Tuple[int, ...] = ()

    def dependencies(self) -> List[int]:
        """Ids of tasks that must execute strictly before this one."""
        deps = [r.producer for r in self.reads if r.producer is not None]
        deps.extend(self.extra_after)
        return deps

    def describe(self) -> str:
        """Short human-readable tag used in traces and errors."""
        if self.kind is TaskKind.OP:
            tag = "+".join(f"n{c}" for c in self.covers)
            return f"t{self.task_id}:{self.op_name}@{self.unit}[{tag}]"
        flags = "S" if self.is_spill else ("L" if self.is_reload else "")
        store = f" store {self.store_symbol}" if self.store_symbol else ""
        return (
            f"t{self.task_id}:{flags}xfer n{self.value} "
            f"{self.source_storage}->{self.dest_storage} via {self.bus}{store}"
        )


class TaskGraph:
    """The schedulable form of one assignment (mutable under spilling)."""

    def __init__(
        self,
        sn: SplitNodeDAG,
        assignment: Assignment,
        pin_value: Optional[int] = None,
    ):
        self.sn = sn
        self.machine: Machine = sn.machine
        self.dag: BlockDAG = sn.dag
        self.assignment = assignment
        self.tasks: Dict[int, Task] = {}
        self._ids = IdAllocator()
        #: (value original id, storage) -> delivering task id; a value may
        #: be re-delivered after a spill, in which case this tracks the
        #: *latest* delivery (used only during construction).
        self._delivered: Dict[Tuple[int, str], Optional[int]] = {}
        #: transfers per bus, for the congestion-driven path choice.
        self._bus_load: Dict[str, int] = {b: 0 for b in self.machine.bus_names()}
        self.spill_count = 0
        self.reload_count = 0
        #: deliveries that must stay register-resident to the end of the
        #: block (branch condition values).
        self.pinned: Set[int] = set()
        #: how the terminator's control slot reads its condition value
        #: (set by pinning; None for straight-line blocks).
        self.condition_read: Optional[ReadRef] = None
        self._build(pin_value)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self, pin_value: Optional[int]) -> None:
        for root_id, alternative in self._ops_in_schedule_order():
            unit = self.machine.unit(alternative.unit)
            rf = unit.register_file
            operand_ids = self._operands_of(root_id, alternative)
            reads = tuple(
                self._ensure_delivery(operand, rf) for operand in operand_ids
            )
            task_id = self._new_task(
                kind=TaskKind.OP,
                resource=alternative.unit,
                value=root_id,
                reads=reads,
                dest_storage=rf,
                unit=alternative.unit,
                op_name=alternative.op_name,
                covers=alternative.covers,
            )
            self._delivered[(root_id, rf)] = task_id
        for store_id in self.dag.stores:
            self._build_store(store_id)
        if pin_value is not None:
            self._pin(pin_value)
        self._add_store_anti_dependences()

    def _add_store_anti_dependences(self) -> None:
        """A store overwrites its variable's data-memory word; every task
        that reads that variable's *entry* value straight from memory
        (leaf loads and memory-to-memory store copies) must run first."""
        stores_by_symbol: Dict[str, int] = {}
        for task_id, task in self.tasks.items():
            if task.store_symbol is not None:
                stores_by_symbol[task.store_symbol] = task_id
        if not stores_by_symbol:
            return
        readers: Dict[str, List[int]] = {}
        for task_id, task in self.tasks.items():
            for read in task.reads:
                if read.producer is not None:
                    continue
                leaf = self.dag.node(read.value)
                if leaf.opcode is Opcode.VAR and leaf.symbol in stores_by_symbol:
                    readers.setdefault(leaf.symbol, []).append(task_id)
        for symbol, store_id in stores_by_symbol.items():
            blocking = tuple(
                t for t in sorted(readers.get(symbol, [])) if t != store_id
            )
            if blocking:
                store = self.tasks[store_id]
                store.extra_after = store.extra_after + blocking

    def _ops_in_schedule_order(self):
        order = {
            node_id: position
            for position, node_id in enumerate(self.dag.schedule_order())
        }
        return sorted(
            self.assignment.covering_ops(), key=lambda item: order[item[0]]
        )

    def _operands_of(self, root_id: int, alternative) -> Tuple[int, ...]:
        if not alternative.from_pattern:
            return self.dag.node(root_id).operands
        for match in self.sn.pattern_matches:
            if (
                match.root == root_id
                and match.unit == alternative.unit
                and match.op.name == alternative.op_name
            ):
                return match.operands
        raise CoverageError(
            f"complex alternative {alternative.op_name}@{alternative.unit} "
            f"at n{root_id} has no recorded pattern match"
        )

    def _home_storage(self, value_id: int) -> str:
        """Where a value is first produced under this assignment."""
        node = self.dag.node(value_id)
        if is_leaf(node.opcode):
            return self.machine.data_memory
        alternative = self.assignment.choice[value_id]
        return self.machine.unit(alternative.unit).register_file

    def _ensure_delivery(self, value_id: int, target: str) -> ReadRef:
        """Make the value available in ``target`` and return a ReadRef."""
        source = self._home_storage(value_id)
        if source == target:
            return ReadRef(
                self._delivered.get((value_id, source)), source, value_id
            )
        existing = self._delivered.get((value_id, target))
        if existing is not None:
            return ReadRef(existing, target, value_id)
        return self._build_chain(value_id, source, target)

    def _build_chain(self, value_id: int, source: str, target: str) -> ReadRef:
        path = self._choose_path(
            source, target, value_id=value_id, skip_delivered=True
        )
        current = ReadRef(
            self._delivered.get((value_id, source)), source, value_id
        )
        for hop in path:
            cached = self._delivered.get((value_id, hop.destination))
            if cached is not None:
                current = ReadRef(cached, hop.destination, value_id)
                continue
            task_id = self._new_task(
                kind=TaskKind.XFER,
                resource=hop.bus,
                value=value_id,
                reads=(current,),
                dest_storage=hop.destination,
                bus=hop.bus,
                source_storage=hop.source,
            )
            self._bus_load[hop.bus] += 1
            self._delivered[(value_id, hop.destination)] = task_id
            current = ReadRef(task_id, hop.destination, value_id)
        return current

    def _choose_path(
        self,
        source: str,
        target: str,
        value_id: Optional[int] = None,
        skip_delivered: bool = False,
        always_last: bool = False,
    ) -> TransferPath:
        """Least-congested minimal path (Section IV-B's heuristic).

        Congestion counts only the hops the caller would actually
        materialise: with ``skip_delivered``, a hop whose destination
        already holds the value (the ``_delivered`` cache) creates no
        transfer task and so charges no bus load.  ``always_last``
        exempts the final hop — store builders always emit it to carry
        the store symbol, delivered or not.  Charging skipped hops used
        to bias the choice away from paths that were actually cheaper.

        When ``value_id`` is given, the demanded movement is also
        reported to the Split-Node DAG so lazy mode can materialise its
        canonical transfer chain (a no-op in eager mode).
        """
        paths = self.sn.transfer_db.paths(source, target)

        def materialises(hop, is_last: bool) -> bool:
            if not skip_delivered or (always_last and is_last):
                return True
            return self._delivered.get((value_id, hop.destination)) is None

        def congestion(p: TransferPath) -> int:
            last = len(p) - 1
            return sum(
                self._bus_load[h.bus]
                for i, h in enumerate(p)
                if materialises(h, i == last)
            )

        chosen = min(paths, key=lambda p: (congestion(p), tuple(h.bus for h in p)))
        if len(paths) > 1:
            jr = _telemetry().journal
            if jr.enabled:
                jr.emit(
                    "transfer.path",
                    source=source,
                    target=target,
                    chosen=[h.bus for h in chosen],
                    load=congestion(chosen),
                    alternatives=sorted(
                        (
                            {
                                "buses": [h.bus for h in p],
                                "load": congestion(p),
                            }
                            for p in paths
                            if p is not chosen
                        ),
                        key=lambda a: (a["load"], a["buses"]),
                    ),
                )
        if value_id is not None:
            self.sn.materialize_transfer(value_id, source, target)
        return chosen

    def _build_store(self, store_id: int) -> None:
        store = self.dag.node(store_id)
        value_id = store.operands[0]
        source = self._home_storage(value_id)
        dm = self.machine.data_memory
        if source == dm:
            # Storing an unmodified leaf.  If the leaf's own variable is
            # also overwritten by this block (swap patterns like
            # ``t = a; a = b; b = t``), plain memory-to-memory copies
            # form an anti-dependence cycle: each copy must read before
            # the other writes.  Routing the value through a register
            # reads the entry value early and breaks the cycle.
            leaf = self.dag.node(value_id)
            conflicting = (
                leaf.opcode is Opcode.VAR
                and leaf.symbol != store.symbol
                and leaf.symbol in self.dag.store_symbols()
            )
            if conflicting:
                staging = self.machine.units[0].register_file
                for rf in (u.register_file for u in self.machine.units):
                    if self._delivered.get((value_id, rf)) is not None:
                        staging = rf
                        break
                read = self._ensure_delivery(value_id, staging)
                path = self._choose_path(staging, dm, value_id=value_id)
                current = read
                for hop in path[:-1]:
                    task_id = self._new_task(
                        kind=TaskKind.XFER,
                        resource=hop.bus,
                        value=value_id,
                        reads=(current,),
                        dest_storage=hop.destination,
                        bus=hop.bus,
                        source_storage=hop.source,
                    )
                    self._bus_load[hop.bus] += 1
                    current = ReadRef(task_id, hop.destination, value_id)
                last = path[-1]
                self._new_task(
                    kind=TaskKind.XFER,
                    resource=last.bus,
                    value=value_id,
                    reads=(current,),
                    dest_storage=dm,
                    bus=last.bus,
                    source_storage=last.source,
                    store_symbol=store.symbol,
                )
                self._bus_load[last.bus] += 1
                return
            # Otherwise: a single memory-to-memory copy over any bus
            # that reaches data memory.
            read = ReadRef(None, dm, value_id)
            bus = self._dm_bus()
            self._new_task(
                kind=TaskKind.XFER,
                resource=bus,
                value=value_id,
                reads=(read,),
                dest_storage=dm,
                bus=bus,
                source_storage=dm,
                store_symbol=store.symbol,
            )
            self._bus_load[bus] += 1
            return
        # Move the value to the storage adjacent to memory, then one
        # dedicated hop into memory carrying the store symbol.
        path = self._choose_path(
            source, dm, value_id=value_id, skip_delivered=True, always_last=True
        )
        prefix, last = path[:-1], path[-1]
        current = ReadRef(
            self._delivered.get((value_id, source)), source, value_id
        )
        for hop in prefix:
            cached = self._delivered.get((value_id, hop.destination))
            if cached is not None:
                current = ReadRef(cached, hop.destination, value_id)
                continue
            task_id = self._new_task(
                kind=TaskKind.XFER,
                resource=hop.bus,
                value=value_id,
                reads=(current,),
                dest_storage=hop.destination,
                bus=hop.bus,
                source_storage=hop.source,
            )
            self._bus_load[hop.bus] += 1
            self._delivered[(value_id, hop.destination)] = task_id
            current = ReadRef(task_id, hop.destination, value_id)
        self._new_task(
            kind=TaskKind.XFER,
            resource=last.bus,
            value=value_id,
            reads=(current,),
            dest_storage=dm,
            bus=last.bus,
            source_storage=last.source,
            store_symbol=store.symbol,
        )
        self._bus_load[last.bus] += 1

    def _dm_bus(self) -> str:
        dm = self.machine.data_memory
        for bus in self.machine.buses:
            if dm in bus.connects:
                return bus.name
        raise CoverageError(f"no bus reaches data memory {dm!r}")

    def _pin(self, value_id: int) -> None:
        """Keep ``value_id`` register-resident through the end of the
        block (it is read by the control slot of the terminator)."""
        source = self._home_storage(value_id)
        if source == self.machine.data_memory:
            # Branch on a plain variable: reuse an existing register copy
            # if one was already loaded for an operation, otherwise load
            # it into the first unit's register file for the control slot.
            target = self.machine.units[0].register_file
            for rf in (u.register_file for u in self.machine.units):
                if self._delivered.get((value_id, rf)) is not None:
                    target = rf
                    break
            read = self._ensure_delivery(value_id, target)
        else:
            read = ReadRef(
                self._delivered.get((value_id, source)), source, value_id
            )
        if read.producer is None:
            raise CoverageError(
                f"cannot pin value n{value_id}: no delivering task"
            )
        self.pinned.add(read.producer)
        self.condition_read: Optional[ReadRef] = read

    def _new_task(self, **kwargs) -> int:
        task_id = self._ids.allocate()
        self.tasks[task_id] = Task(task_id=task_id, **kwargs)
        return task_id

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.tasks)

    def task_ids(self) -> List[int]:
        """All live task ids, ascending."""
        return sorted(self.tasks)

    def latency(self, task_id: int) -> int:
        """Cycles until the task's result is available (transfers: 1)."""
        task = self.tasks[task_id]
        if task.kind is TaskKind.OP:
            machine_op = self.machine.unit(task.unit).op_named(task.op_name)
            if machine_op is not None:
                return machine_op.latency
        return 1

    def has_multi_cycle_ops(self) -> bool:
        """True when any schedulable task takes more than one cycle."""
        return any(self.latency(t) > 1 for t in self.tasks)

    def adjacency(self) -> Dict[int, List[int]]:
        """task -> its dependency tasks (edges point at producers)."""
        return {
            task_id: self.tasks[task_id].dependencies()
            for task_id in self.task_ids()
        }

    def consumers_of(self, task_id: int) -> List[int]:
        """Tasks that read the delivery made by ``task_id``."""
        result = []
        for other_id in self.task_ids():
            if any(r.producer == task_id for r in self.tasks[other_id].reads):
                result.append(other_id)
        return result

    def deliveries_into(self, storage: str) -> List[int]:
        """Tasks that write a value into ``storage``."""
        return [
            task_id
            for task_id in self.task_ids()
            if self.tasks[task_id].dest_storage == storage
        ]

    def register_deliveries(self) -> List[int]:
        """Tasks whose result occupies a register (dest is a register file)."""
        rf_names = {r.name for r in self.machine.register_files}
        return [
            task_id
            for task_id in self.task_ids()
            if self.tasks[task_id].dest_storage in rf_names
        ]

    # ------------------------------------------------------------------
    # Spilling (paper, Fig. 9)
    # ------------------------------------------------------------------

    def spill_delivery(
        self,
        delivery_id: int,
        covered: Set[int],
        ready: Optional[Set[int]] = None,
    ) -> Tuple[int, List[int]]:
        """Spill the register-resident value delivered by ``delivery_id``.

        Inserts a spill transfer (register file → data memory) and
        redirects consumers that would *later* require the value to
        reloads from memory (one reload per destination storage),
        removing pending transfers that are no longer required (Fig. 9).

        Consumers in ``ready`` (schedulable right now) keep reading the
        register copy — the value stays live until they and the spill
        have executed, but their operands need no round trip through
        memory.  If every pending consumer is ready, the latest one is
        rewired anyway so the spill actually shortens the lifetime.
        With ``ready=None`` every pending consumer is rewired.

        Returns ``(spill_task_id, new_task_ids)`` where ``new_task_ids``
        includes the spill and all reloads, so the caller can regenerate
        cliques over the updated task set.

        Raises :class:`CoverageError` when the delivery is pinned or has
        no uncovered consumers (nothing would be gained).
        """
        if delivery_id in self.pinned:
            raise CoverageError(f"delivery t{delivery_id} is pinned; cannot spill")
        delivery = self.tasks[delivery_id]
        bank = delivery.dest_storage
        value_id = delivery.value
        dm = self.machine.data_memory
        all_pending = [
            c for c in self.consumers_of(delivery_id) if c not in covered
        ]
        if not all_pending:
            raise CoverageError(
                f"delivery t{delivery_id} has no uncovered consumers"
            )
        if ready is None:
            pending = all_pending
        else:
            pending = [c for c in all_pending if c not in ready]
            if not pending:
                pending = [max(all_pending)]
        # The spill itself: bank -> memory (first hop of a minimal path;
        # on multi-hop architectures the spill slot must be bus-adjacent
        # to the bank, so we spill via the full chain).
        spill_path = self._choose_path(bank, dm, value_id=value_id)
        current = ReadRef(delivery_id, bank, value_id)
        spill_ids: List[int] = []
        for hop in spill_path:
            task_id = self._new_task(
                kind=TaskKind.XFER,
                resource=hop.bus,
                value=value_id,
                reads=(current,),
                dest_storage=hop.destination,
                bus=hop.bus,
                source_storage=hop.source,
                is_spill=True,
            )
            self._bus_load[hop.bus] += 1
            spill_ids.append(task_id)
            current = ReadRef(task_id, hop.destination, value_id)
        spill_id = spill_ids[-1]
        self.spill_count += 1
        memory_read = ReadRef(spill_id, dm, value_id)

        new_ids: List[int] = list(spill_ids)
        reload_for_storage: Dict[str, ReadRef] = {}

        def reload_into(target: str) -> ReadRef:
            if target in reload_for_storage:
                return reload_for_storage[target]
            path = self._choose_path(dm, target, value_id=value_id)
            ref = memory_read
            for hop in path:
                task_id = self._new_task(
                    kind=TaskKind.XFER,
                    resource=hop.bus,
                    value=value_id,
                    reads=(ref,),
                    dest_storage=hop.destination,
                    bus=hop.bus,
                    source_storage=hop.source,
                    is_reload=True,
                )
                self._bus_load[hop.bus] += 1
                new_ids.append(task_id)
                ref = ReadRef(task_id, hop.destination, value_id)
            self.reload_count += 1
            reload_for_storage[target] = ref
            return ref

        for consumer_id in pending:
            consumer = self.tasks[consumer_id]
            if consumer.kind is TaskKind.OP:
                replacement = reload_into(consumer.dest_storage)
                consumer.reads = tuple(
                    replacement if r.producer == delivery_id else r
                    for r in consumer.reads
                )
                continue
            # A pending transfer reading the spilled value out of the
            # bank is "no longer required" (Fig. 9): its own consumers
            # are served by a fresh chain from memory instead.
            destination = consumer.dest_storage
            if destination == dm:
                # Store or earlier spill: rewrite to copy straight from
                # the spill slot in memory.
                consumer.reads = (memory_read,)
                consumer.source_storage = dm
                consumer.bus = self._dm_bus()
                consumer.resource = consumer.bus
                continue
            replacement = reload_into(destination)
            for downstream_id in self.consumers_of(consumer_id):
                downstream = self.tasks[downstream_id]
                downstream.reads = tuple(
                    replacement if r.producer == consumer_id else r
                    for r in downstream.reads
                )
            self._bus_load[consumer.bus] -= 1
            del self.tasks[consumer_id]
        return spill_id, [i for i in new_ids if i in self.tasks]

    def validate(self) -> None:
        """Structural invariants: reads reference live tasks, register
        deliveries have consumers or are pinned, dependencies acyclic."""
        from repro.utils.graph import topological_order

        for task in self.tasks.values():
            for read in task.reads:
                if read.producer is not None and read.producer not in self.tasks:
                    raise CoverageError(
                        f"{task.describe()} reads deleted task t{read.producer}"
                    )
        for delivery_id in self.register_deliveries():
            if delivery_id in self.pinned:
                continue
            if not self.consumers_of(delivery_id):
                raise CoverageError(
                    f"register delivery {self.tasks[delivery_id].describe()} "
                    f"has no consumers"
                )
        topological_order(self.adjacency())
