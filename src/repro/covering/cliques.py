"""Maximal-clique generation and instruction legality (paper, IV-C).

:func:`generate_maximal_cliques` is a faithful implementation of the
Fig. 8 pseudo-code: a recursive generator over the pairwise-parallelism
matrix whose first loop greedily absorbs every node that "will not
preclude adding any other node", whose second loop branches on the
remaining compatible nodes, and whose ``i < index`` test prunes cliques
that an earlier seed already produced.

:func:`legalize_cliques` implements IV-C.3: each proposed instruction is
compared with the ISDL constraints; an illegal grouping is split into
smaller cliques until every constraint is met.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.covering.taskgraph import Task, TaskGraph, TaskKind
from repro.errors import CoverageError
from repro.isdl.model import Constraint, Machine
from repro.telemetry.session import current as _telemetry
from repro.utils.bitset import bits, iter_bits, popcount


class _CliqueBudgetExceeded(Exception):
    """Internal: unwinds the recursion when ``max_cliques`` is hit."""


#: Cap on the ``visited`` memo of the Fig. 8 recursion.  The memo is
#: purely a time-saving prune (skipping re-expansion of a member set
#: already explored under a smaller-or-equal index), so on dense
#: matrices — where distinct member sets grow combinatorially — we stop
#: *inserting* new states past this many entries rather than let the
#: dict blow up memory.  Existing entries keep being consulted and
#: updated, and both kernels apply the cap identically, so results are
#: unchanged.
_VISITED_LIMIT = 1 << 18


def generate_maximal_cliques(
    matrix: np.ndarray, max_cliques: Optional[int] = None
) -> List[FrozenSet[int]]:
    """All maximal cliques of the parallelism graph (Fig. 8).

    ``matrix`` is the conflict matrix (0 = parallel).  Returns cliques as
    frozensets of *matrix indices*, deterministically ordered (by size
    descending, then lexicographically).  Every node appears in at least
    one clique; a clique may contain a single node.

    ``max_cliques`` bounds the enumeration — the paper calls clique
    generation "the most time consuming portion of our algorithm".  When
    the budget trips, the cliques found so far are returned, topped up
    with singletons for any node not yet covered (so covering always has
    a usable candidate per node).

    The candidate bookkeeping is vectorised over numpy boolean rows; the
    recursion structure and the ``i < index`` pruning follow the paper's
    pseudo-code exactly.
    """
    size = matrix.shape[0]
    parallel = matrix == 0  # diagonal is False: a node never self-merges
    found: Set[FrozenSet[int]] = set()
    #: states already expanded, with the smallest ``index`` they were
    #: expanded under — the second loop's branches reach the same clique
    #: through different insertion orders, and a smaller index explores a
    #: superset of branches, so only strictly-smaller revisits re-expand.
    visited: Dict[FrozenSet[int], int] = {}
    # Search statistics accumulate in locals; one counter flush at the
    # end keeps the recursion probe-free.
    index_prunes = 0
    revisit_skips = 0
    budget_trips = 0
    singleton_topups = 0

    def gen_max_clique(members: List[int], index: int) -> None:
        nonlocal index_prunes, revisit_skips
        state = frozenset(members)
        seen_index = visited.get(state)
        if seen_index is not None and seen_index <= index:
            revisit_skips += 1
            return
        if len(visited) < _VISITED_LIMIT or state in visited:
            visited[state] = index
        while True:
            compatible = parallel[members].all(axis=0)
            candidates = np.flatnonzero(compatible)
            if candidates.size == 0:
                if max_cliques is not None and len(found) >= max_cliques:
                    raise _CliqueBudgetExceeded
                found.add(frozenset(members))
                return
            # First loop: absorb the lowest-numbered candidate that does
            # not preclude any other candidate (all-pairwise-parallel
            # within the candidate set).
            sub = parallel[np.ix_(candidates, candidates)]
            non_precluding = np.flatnonzero(
                sub.sum(axis=1) == candidates.size - 1
            )
            if non_precluding.size:
                node = int(candidates[non_precluding[0]])
                if node < index:
                    index_prunes += 1
                    return  # pruning condition (Fig. 8)
                members = members + [node]
                continue
            break
        # Second loop: branch on each remaining compatible node.
        for node in candidates:
            gen_max_clique(members + [int(node)], max(int(node), index))

    try:
        for seed in range(size):
            gen_max_clique([seed], seed)
    except _CliqueBudgetExceeded:
        budget_trips = 1
        covered = set().union(*found) if found else set()
        for node in range(size):
            if node not in covered:
                found.add(frozenset({node}))
                singleton_topups += 1
    tm = _telemetry()
    if tm.enabled:
        tm.count("cliques.generation_calls", 1)
        tm.count("cliques.enumerated", len(found))
        tm.count("cliques.index_prunes", index_prunes)
        tm.count("cliques.revisit_skips", revisit_skips)
        tm.count("cliques.budget_trips", budget_trips)
        tm.count("cliques.singleton_topups", singleton_topups)
        tm.record("cliques.matrix_size", size)
    return sorted(found, key=lambda c: (-len(c), sorted(c)))


def _enumerate_clique_masks(
    rows: Dict[int, int],
    budget: Optional[int],
    restrict: int = 0,
) -> Tuple[Set[int], bool, List[int]]:
    """The Fig. 8 recursion over integer bitmask rows.

    ``rows`` maps each node to the mask of nodes it is parallel with
    (self bit clear).  Returns ``(found_masks, budget_tripped, [index_prunes,
    revisit_skips])``.  The traversal — seed order, the greedy absorb of
    the lowest non-precluding candidate, the ``i < index`` prune, the
    visited memo, and the budget check — mirrors the numpy reference
    step for step, so the two kernels stay bit-identical even in the
    traversal-order-dependent budget-trip regime.

    A non-zero ``restrict`` prunes any branch that can no longer reach a
    clique intersecting it: every clique produced below a state is a
    subset of ``members | compatible``, and on any reference path that
    produces a clique C, ``members ⊆ C ⊆ members | compatible`` holds at
    every step — so the prune loses exactly the cliques disjoint from
    ``restrict`` and nothing else.  This is what makes the post-spill
    incremental rebuild exact.
    """
    found: Set[int] = set()
    visited: Dict[int, int] = {}
    stats = [0, 0]  # index_prunes, revisit_skips

    def gen(members: int, compatible: int, index: int) -> None:
        if restrict and not ((members | compatible) & restrict):
            return
        seen_index = visited.get(members)
        if seen_index is not None and seen_index <= index:
            stats[1] += 1
            return
        if len(visited) < _VISITED_LIMIT or members in visited:
            visited[members] = index
        while True:
            if not compatible:
                if budget is not None and len(found) >= budget:
                    raise _CliqueBudgetExceeded
                found.add(members)
                return
            # First loop: absorb the lowest-numbered candidate that does
            # not preclude any other candidate.  ``compatible & ~rows[c]``
            # is the candidates *not* parallel with c (always including c
            # itself); equal to c's own bit means c precludes nothing.
            node = -1
            rest = compatible
            while rest:
                low = rest & -rest
                if compatible & ~rows[low.bit_length() - 1] == low:
                    node = low.bit_length() - 1
                    break
                rest ^= low
            if node < 0:
                break
            if node < index:
                stats[0] += 1
                return  # pruning condition (Fig. 8)
            members |= 1 << node
            compatible &= rows[node]
        # Second loop: branch on each remaining compatible node.
        rest = compatible
        while rest:
            low = rest & -rest
            node = low.bit_length() - 1
            gen(members | low, compatible & rows[node], max(node, index))
            rest ^= low

    tripped = False
    try:
        for seed in sorted(rows):
            gen(1 << seed, rows[seed], seed)
    except _CliqueBudgetExceeded:
        tripped = True
    return found, tripped, stats


def generate_maximal_clique_masks(
    rows: Dict[int, int], max_cliques: Optional[int] = None
) -> List[int]:
    """All maximal cliques over bitmask parallelism rows (Fig. 8).

    The bitmask counterpart of :func:`generate_maximal_cliques`: input
    rows come from :func:`repro.covering.parallelism.parallelism_masks`
    (task-id bit space), output cliques are ints with one bit per member
    task, ordered by size descending then lexicographically — the same
    cliques, in the same order, as the reference kernel produces on the
    equivalent matrix (including the budget-trip + singleton-top-up
    behavior).
    """
    found, tripped, stats = _enumerate_clique_masks(rows, max_cliques)
    singleton_topups = 0
    if tripped:
        covered = 0
        for mask in found:
            covered |= mask
        for node in sorted(rows):
            if not (covered >> node) & 1:
                found.add(1 << node)
                singleton_topups += 1
    tm = _telemetry()
    if tm.enabled:
        tm.count("cliques.mask_kernel_calls", 1)
        tm.count("cliques.generation_calls", 1)
        tm.count("cliques.enumerated", len(found))
        tm.count("cliques.index_prunes", stats[0])
        tm.count("cliques.revisit_skips", stats[1])
        tm.count("cliques.budget_trips", 1 if tripped else 0)
        tm.count("cliques.singleton_topups", singleton_topups)
        tm.record("cliques.matrix_size", len(rows))
    return sorted(found, key=lambda m: (-popcount(m), bits(m)))


def _matches_term(task: Task, resource: str, op_name: str) -> bool:
    if task.resource != resource:
        return False
    if op_name == "*":
        return True
    return task.kind is TaskKind.OP and task.op_name == op_name


def _violates(
    tasks: Dict[int, Task], clique: FrozenSet[int], constraint: Constraint
) -> List[List[int]]:
    """Per constraint term, the clique members matching it (empty list
    somewhere = constraint not violated)."""
    matches: List[List[int]] = []
    for term in constraint.terms:
        matched = [
            t
            for t in sorted(clique)
            if _matches_term(tasks[t], term.resource, term.op_name)
        ]
        if not matched:
            return []
        matches.append(matched)
    return matches


def is_legal_instruction(
    graph: TaskGraph, clique: FrozenSet[int], machine: Machine
) -> bool:
    """True when ``clique`` violates no ISDL constraint."""
    return all(
        not _violates(graph.tasks, clique, constraint)
        for constraint in machine.constraints
    )


def _raise_uncoverable(
    graph: TaskGraph, machine: Machine, missing: Set[int]
) -> None:
    """A task fell out of *every* legal clique: its singleton instruction
    violates a constraint, so no covering exists.  Raising here turns
    what would otherwise be an endless spill spiral ending in a
    misleading "register files too small" error into a precise one."""
    details = []
    for task_id in sorted(missing):
        task = graph.tasks[task_id]
        culprits = [
            str(constraint)
            for constraint in machine.constraints
            if _violates(graph.tasks, frozenset({task_id}), constraint)
        ]
        details.append(
            f"{task.describe()} (violates: {'; '.join(culprits) or '?'})"
        )
    raise CoverageError(
        f"no legal implementation on the assigned unit for "
        f"{len(missing)} task(s) — even as a single-operation "
        f"instruction each violates an ISDL constraint of machine "
        f"{machine.name!r}: " + "; ".join(details)
    )


def legalize_cliques(
    graph: TaskGraph, cliques: Sequence[FrozenSet[int]], machine: Machine
) -> List[FrozenSet[int]]:
    """Split illegal cliques until every instruction meets the
    constraints (IV-C.3), dropping results subsumed by larger cliques.

    Raises :class:`CoverageError` when a task present in the input falls
    out of every legal clique (its singleton grouping already violates a
    constraint) — covering could never schedule it.
    """
    if not machine.constraints:
        return list(cliques)
    jr = _telemetry().journal
    legal: Set[FrozenSet[int]] = set()
    work = list(cliques)
    seen: Set[FrozenSet[int]] = set()
    splits = 0
    while work:
        clique = work.pop()
        if clique in seen or not clique:
            continue
        seen.add(clique)
        violated = None
        culprit = None
        for constraint in machine.constraints:
            matches = _violates(graph.tasks, clique, constraint)
            if matches:
                violated = matches
                culprit = constraint
                break
        if violated is None:
            legal.add(clique)
            continue
        # Break the violation: removing any node matching any term yields
        # a smaller clique; branch on each possibility.
        breakers = sorted({t for matched in violated for t in matched})
        splits += 1
        if jr.enabled:
            jr.emit(
                "clique.split",
                members=sorted(clique),
                constraint=str(culprit),
                breakers=breakers,
            )
        for task_id in breakers:
            work.append(clique - {task_id})
    # Drop cliques strictly contained in another legal clique.
    result = [
        c
        for c in legal
        if not any(c < other for other in legal)
    ]
    tm = _telemetry()
    if tm.enabled:
        tm.count("cliques.illegal_split", splits)
        tm.count("cliques.subsumed_discarded", len(legal) - len(result))
    requested: Set[int] = set().union(*cliques) if cliques else set()
    covered: Set[int] = set().union(*result) if result else set()
    if requested - covered:
        _raise_uncoverable(graph, machine, requested - covered)
    return sorted(result, key=lambda c: (-len(c), sorted(c)))


def legalize_clique_masks(
    graph: TaskGraph, cliques: Sequence[int], machine: Machine
) -> List[int]:
    """Bitmask counterpart of :func:`legalize_cliques`: cliques are ints
    in task-id bit space; same splits, same subsumption filter, same
    order, same uncoverable-task diagnostic."""
    if not machine.constraints:
        return list(cliques)
    # One mask per constraint term: the tasks matching it.  A clique
    # violates a constraint when it intersects every term's mask.
    term_masks: List[List[int]] = []
    for constraint in machine.constraints:
        masks = []
        for term in constraint.terms:
            mask = 0
            for task_id, task in graph.tasks.items():
                if _matches_term(task, term.resource, term.op_name):
                    mask |= 1 << task_id
            masks.append(mask)
        term_masks.append(masks)
    jr = _telemetry().journal
    legal: Set[int] = set()
    work = list(cliques)
    seen: Set[int] = set()
    splits = 0
    while work:
        clique = work.pop()
        if clique in seen or not clique:
            continue
        seen.add(clique)
        violated: Optional[int] = None
        culprit: Optional[Constraint] = None
        for constraint, masks in zip(machine.constraints, term_masks):
            if all(clique & mask for mask in masks):
                breakers = 0
                for mask in masks:
                    breakers |= clique & mask
                violated = breakers
                culprit = constraint
                break
        if violated is None:
            legal.add(clique)
            continue
        splits += 1
        if jr.enabled:
            jr.emit(
                "clique.split",
                members=bits(clique),
                constraint=str(culprit),
                breakers=bits(violated),
            )
        for low in _low_bits(violated):
            work.append(clique & ~low)
    result = [
        c
        for c in legal
        if not any(c != other and c & ~other == 0 for other in legal)
    ]
    tm = _telemetry()
    if tm.enabled:
        tm.count("cliques.illegal_split", splits)
        tm.count("cliques.subsumed_discarded", len(legal) - len(result))
    requested = 0
    for clique in cliques:
        requested |= clique
    covered = 0
    for clique in result:
        covered |= clique
    if requested & ~covered:
        _raise_uncoverable(
            graph, machine, set(iter_bits(requested & ~covered))
        )
    return sorted(result, key=lambda m: (-popcount(m), bits(m)))


def _low_bits(mask: int) -> List[int]:
    """The isolated set bits of ``mask``, ascending (as one-bit masks)."""
    result = []
    while mask:
        low = mask & -mask
        result.append(low)
        mask ^= low
    return result
