"""Maximal-clique generation and instruction legality (paper, IV-C).

:func:`generate_maximal_cliques` is a faithful implementation of the
Fig. 8 pseudo-code: a recursive generator over the pairwise-parallelism
matrix whose first loop greedily absorbs every node that "will not
preclude adding any other node", whose second loop branches on the
remaining compatible nodes, and whose ``i < index`` test prunes cliques
that an earlier seed already produced.

:func:`legalize_cliques` implements IV-C.3: each proposed instruction is
compared with the ISDL constraints; an illegal grouping is split into
smaller cliques until every constraint is met.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set

import numpy as np

from repro.covering.taskgraph import Task, TaskGraph, TaskKind
from repro.isdl.model import Constraint, Machine
from repro.telemetry.session import current as _telemetry


class _CliqueBudgetExceeded(Exception):
    """Internal: unwinds the recursion when ``max_cliques`` is hit."""


def generate_maximal_cliques(
    matrix: np.ndarray, max_cliques: Optional[int] = None
) -> List[FrozenSet[int]]:
    """All maximal cliques of the parallelism graph (Fig. 8).

    ``matrix`` is the conflict matrix (0 = parallel).  Returns cliques as
    frozensets of *matrix indices*, deterministically ordered (by size
    descending, then lexicographically).  Every node appears in at least
    one clique; a clique may contain a single node.

    ``max_cliques`` bounds the enumeration — the paper calls clique
    generation "the most time consuming portion of our algorithm".  When
    the budget trips, the cliques found so far are returned, topped up
    with singletons for any node not yet covered (so covering always has
    a usable candidate per node).

    The candidate bookkeeping is vectorised over numpy boolean rows; the
    recursion structure and the ``i < index`` pruning follow the paper's
    pseudo-code exactly.
    """
    size = matrix.shape[0]
    parallel = matrix == 0  # diagonal is False: a node never self-merges
    found: Set[FrozenSet[int]] = set()
    #: states already expanded, with the smallest ``index`` they were
    #: expanded under — the second loop's branches reach the same clique
    #: through different insertion orders, and a smaller index explores a
    #: superset of branches, so only strictly-smaller revisits re-expand.
    visited: Dict[FrozenSet[int], int] = {}
    # Search statistics accumulate in locals; one counter flush at the
    # end keeps the recursion probe-free.
    index_prunes = 0
    revisit_skips = 0
    budget_trips = 0
    singleton_topups = 0

    def gen_max_clique(members: List[int], index: int) -> None:
        nonlocal index_prunes, revisit_skips
        state = frozenset(members)
        seen_index = visited.get(state)
        if seen_index is not None and seen_index <= index:
            revisit_skips += 1
            return
        visited[state] = index
        while True:
            compatible = parallel[members].all(axis=0)
            candidates = np.flatnonzero(compatible)
            if candidates.size == 0:
                if max_cliques is not None and len(found) >= max_cliques:
                    raise _CliqueBudgetExceeded
                found.add(frozenset(members))
                return
            # First loop: absorb the lowest-numbered candidate that does
            # not preclude any other candidate (all-pairwise-parallel
            # within the candidate set).
            sub = parallel[np.ix_(candidates, candidates)]
            non_precluding = np.flatnonzero(
                sub.sum(axis=1) == candidates.size - 1
            )
            if non_precluding.size:
                node = int(candidates[non_precluding[0]])
                if node < index:
                    index_prunes += 1
                    return  # pruning condition (Fig. 8)
                members = members + [node]
                continue
            break
        # Second loop: branch on each remaining compatible node.
        for node in candidates:
            gen_max_clique(members + [int(node)], max(int(node), index))

    try:
        for seed in range(size):
            gen_max_clique([seed], seed)
    except _CliqueBudgetExceeded:
        budget_trips = 1
        covered = set().union(*found) if found else set()
        for node in range(size):
            if node not in covered:
                found.add(frozenset({node}))
                singleton_topups += 1
    tm = _telemetry()
    if tm.enabled:
        tm.count("cliques.generation_calls", 1)
        tm.count("cliques.enumerated", len(found))
        tm.count("cliques.index_prunes", index_prunes)
        tm.count("cliques.revisit_skips", revisit_skips)
        tm.count("cliques.budget_trips", budget_trips)
        tm.count("cliques.singleton_topups", singleton_topups)
        tm.record("cliques.matrix_size", size)
    return sorted(found, key=lambda c: (-len(c), sorted(c)))


def _matches_term(task: Task, resource: str, op_name: str) -> bool:
    if task.resource != resource:
        return False
    if op_name == "*":
        return True
    return task.kind is TaskKind.OP and task.op_name == op_name


def _violates(
    tasks: Dict[int, Task], clique: FrozenSet[int], constraint: Constraint
) -> List[List[int]]:
    """Per constraint term, the clique members matching it (empty list
    somewhere = constraint not violated)."""
    matches: List[List[int]] = []
    for term in constraint.terms:
        matched = [
            t
            for t in sorted(clique)
            if _matches_term(tasks[t], term.resource, term.op_name)
        ]
        if not matched:
            return []
        matches.append(matched)
    return matches


def is_legal_instruction(
    graph: TaskGraph, clique: FrozenSet[int], machine: Machine
) -> bool:
    """True when ``clique`` violates no ISDL constraint."""
    return all(
        not _violates(graph.tasks, clique, constraint)
        for constraint in machine.constraints
    )


def legalize_cliques(
    graph: TaskGraph, cliques: Sequence[FrozenSet[int]], machine: Machine
) -> List[FrozenSet[int]]:
    """Split illegal cliques until every instruction meets the
    constraints (IV-C.3), dropping results subsumed by larger cliques."""
    if not machine.constraints:
        return list(cliques)
    legal: Set[FrozenSet[int]] = set()
    work = list(cliques)
    seen: Set[FrozenSet[int]] = set()
    splits = 0
    while work:
        clique = work.pop()
        if clique in seen or not clique:
            continue
        seen.add(clique)
        violated = None
        for constraint in machine.constraints:
            matches = _violates(graph.tasks, clique, constraint)
            if matches:
                violated = matches
                break
        if violated is None:
            legal.add(clique)
            continue
        # Break the violation: removing any node matching any term yields
        # a smaller clique; branch on each possibility.
        breakers = sorted({t for matched in violated for t in matched})
        splits += 1
        for task_id in breakers:
            work.append(clique - {task_id})
    # Drop cliques strictly contained in another legal clique.
    result = [
        c
        for c in legal
        if not any(c < other for other in legal)
    ]
    tm = _telemetry()
    if tm.enabled:
        tm.count("cliques.illegal_split", splits)
        tm.count("cliques.subsumed_discarded", len(legal) - len(result))
    return sorted(result, key=lambda c: (-len(c), sorted(c)))
