"""The covering solution object (paper, Section IV-E).

A :class:`BlockSolution` is "a minimal-cost set of shrunk maximal cliques
that cover the Split-Node DAG": unit assignment made, operations and
transfers merged into VLIW instructions, register-bank allocation
performed (loads and spills added when necessary), and a schedule
determined.  Only detailed register allocation remains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.covering.assignment import Assignment
from repro.covering.taskgraph import TaskGraph
from repro.sndag.build import SplitNodeDAG


@dataclass
class BlockSolution:
    """The lowest-cost implementation found for one basic block."""

    machine_name: str
    sn: SplitNodeDAG
    assignment: Assignment
    graph: TaskGraph
    schedule: List[List[int]]
    register_estimate: Dict[str, int]
    spill_count: int
    reload_count: int
    assignments_explored: int
    cpu_seconds: float = 0.0

    @property
    def instruction_count(self) -> int:
        """Code size of the block body (control flow excluded)."""
        return len(self.schedule)

    def tasks_in_cycle(self, cycle: int) -> List[int]:
        """Task ids issued in the given cycle."""
        return list(self.schedule[cycle])

    def cycle_of(self, task_id: int) -> int:
        """Issue cycle of ``task_id`` (KeyError if unscheduled)."""
        for cycle, members in enumerate(self.schedule):
            if task_id in members:
                return cycle
        raise KeyError(f"task t{task_id} is not scheduled")

    def validate(self) -> None:
        """Schedule invariants: every task exactly once, dependencies
        complete (issue + latency) before their consumers issue, no
        resource scheduled twice per cycle."""
        seen: Dict[int, int] = {}
        for cycle, members in enumerate(self.schedule):
            resources = set()
            for task_id in members:
                if task_id in seen:
                    raise AssertionError(f"task t{task_id} scheduled twice")
                seen[task_id] = cycle
                resource = self.graph.tasks[task_id].resource
                if resource in resources:
                    raise AssertionError(
                        f"cycle {cycle}: resource {resource} used twice"
                    )
                resources.add(resource)
        for task_id, cycle in seen.items():
            for dependency in self.graph.tasks[task_id].dependencies():
                available = seen[dependency] + self.graph.latency(dependency)
                if available > cycle:
                    raise AssertionError(
                        f"task t{task_id} issued at {cycle} but its "
                        f"dependency t{dependency} completes at {available}"
                    )
        if set(seen) != set(self.graph.task_ids()):
            raise AssertionError("schedule does not cover every task")

    def describe(self) -> str:
        """Readable listing: one line per instruction."""
        lines = [
            f"block solution on {self.machine_name}: "
            f"{self.instruction_count} instructions, "
            f"{self.spill_count} spills, registers {self.register_estimate}"
        ]
        for cycle, members in enumerate(self.schedule):
            parts = " | ".join(
                self.graph.tasks[t].describe() for t in members
            )
            lines.append(f"  {cycle:3d}: {parts}")
        return "\n".join(lines)
