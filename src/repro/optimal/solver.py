"""A dependency-free CDCL SAT core with a CP-style bounds propagator.

The optimal backend needs two engines:

- :class:`CDCLSolver` — a conflict-driven clause-learning SAT solver in
  the MiniSat lineage: two-watched-literal unit propagation, first-UIP
  conflict analysis with activity (VSIDS-style) variable ordering and
  phase saving, Luby-sequence restarts, and **assumption-based
  incremental solving** so the makespan can be tightened bound by bound
  while learned clauses carry over.  Pure python, no third-party
  packages, deterministic: identical inputs produce identical models.

- :class:`BoundsPropagator` — a small constraint-programming layer that
  computes earliest/latest issue windows over the precedence graph
  (bounds consistency to fixpoint) plus admissible makespan lower
  bounds from resource counts.  The encoder uses it to prune SAT
  variables before any clause is built and to stop the UNSAT-tightening
  loop early.

Both are sized for basic-block scheduling problems: tens of tasks,
horizons of a few dozen cycles, thousands of clauses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass
class SolverStats:
    """Cumulative search counters for one :class:`CDCLSolver`."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    restarts: int = 0
    sat_calls: int = 0


def luby(i: int) -> int:
    """The i-th term (1-based) of the Luby restart sequence."""
    while True:
        k = 1
        while (1 << k) - 1 < i:
            k += 1
        if (1 << k) - 1 == i:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1


class CDCLSolver:
    """Conflict-driven clause-learning SAT over DIMACS-style literals.

    Variables are positive integers handed out by :meth:`new_var`; a
    literal is ``+v`` or ``-v``.  Clauses are added at decision level
    zero (between :meth:`solve` calls).  :meth:`solve` accepts a list of
    assumption literals and a conflict budget; it returns ``True``
    (satisfiable — read :meth:`model_value`), ``False`` (unsatisfiable
    under the assumptions), or ``None`` (budget exhausted).
    """

    def __init__(self) -> None:
        self.stats = SolverStats()
        self._num_vars = 0
        #: var -> 0 unassigned, +1 true, -1 false.
        self._assign: List[int] = [0]
        self._level: List[int] = [0]
        self._reason: List[Optional[List[int]]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[int] = [0]  # saved polarity, -1/+1 (0 = none)
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        #: literal -> clauses in which that literal is watched.
        self._watches: Dict[int, List[List[int]]] = {}
        self._order: List[Tuple[float, int]] = []  # lazy max-activity heap
        self._var_inc = 1.0
        self._unsat = False
        self._model: List[int] = []

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return self._clause_count

    _clause_count = 0

    def new_var(self) -> int:
        """Allocate and return a fresh variable (a positive literal)."""
        self._num_vars += 1
        self._assign.append(0)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(-1)  # default polarity: false (sparse schedules)
        heappush(self._order, (0.0, self._num_vars))
        return self._num_vars

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause; returns ``False`` if the formula became UNSAT.

        Must be called at decision level zero.  Duplicate literals are
        merged, tautologies dropped, and literals already false at level
        zero removed.
        """
        assert not self._trail_lim, "add_clause only at decision level 0"
        seen = set()
        clause: List[int] = []
        for lit in lits:
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            value = self._value(lit)
            if value == 1 and self._level[abs(lit)] == 0:
                return True  # already satisfied forever
            if value == -1 and self._level[abs(lit)] == 0:
                continue  # falsified forever: drop the literal
            seen.add(lit)
            clause.append(lit)
        if not clause:
            self._unsat = True
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._unsat = True
                return False
            if self._propagate() is not None:
                self._unsat = True
                return False
            return True
        self._attach(clause)
        self._clause_count += 1
        return True

    def _attach(self, clause: List[int]) -> None:
        self._watches.setdefault(clause[0], []).append(clause)
        self._watches.setdefault(clause[1], []).append(clause)

    # ------------------------------------------------------------------
    # Assignment machinery
    # ------------------------------------------------------------------

    def _value(self, lit: int) -> int:
        v = self._assign[abs(lit)]
        if v == 0:
            return 0
        return v if lit > 0 else -v

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> bool:
        value = self._value(lit)
        if value == 1:
            return True
        if value == -1:
            return False
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else -1
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[List[int]]:
        """Unit propagation; returns a conflicting clause or ``None``."""
        while self._qhead < len(self._trail):
            p = self._trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            false_lit = -p
            watchers = self._watches.get(false_lit)
            if not watchers:
                continue
            kept: List[List[int]] = []
            conflict: Optional[List[int]] = None
            for index, clause in enumerate(watchers):
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    kept.append(clause)
                    continue
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != -1:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches.setdefault(clause[1], []).append(clause)
                        break
                else:
                    kept.append(clause)
                    if not self._enqueue(first, clause):
                        conflict = clause
                        kept.extend(watchers[index + 1:])
                        break
            self._watches[false_lit] = kept
            if conflict is not None:
                return conflict
        return None

    def _new_level(self) -> None:
        self._trail_lim.append(len(self._trail))

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        bound = self._trail_lim[level]
        for lit in reversed(self._trail[bound:]):
            var = abs(lit)
            self._phase[var] = 1 if lit > 0 else -1
            self._assign[var] = 0
            self._reason[var] = None
            heappush(self._order, (-self._activity[var], var))
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
        heappush(self._order, (-self._activity[var], var))

    def _analyze(self, conflict: List[int]) -> Tuple[List[int], int]:
        """First-UIP learned clause and the level to backjump to."""
        learnt: List[int] = [0]  # slot 0: the asserting literal
        seen = set()
        counter = 0
        p: Optional[int] = None
        index = len(self._trail) - 1
        current = self._decision_level()
        reason: Optional[List[int]] = conflict
        while True:
            assert reason is not None
            for q in reason:
                if p is not None and abs(q) == abs(p):
                    continue
                var = abs(q)
                if var in seen or self._level[var] == 0:
                    continue
                seen.add(var)
                self._bump(var)
                if self._level[var] == current:
                    counter += 1
                else:
                    learnt.append(q)
            while abs(self._trail[index]) not in seen:
                index -= 1
            p = self._trail[index]
            index -= 1
            seen.discard(abs(p))
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[abs(p)]
        learnt[0] = -p
        if len(learnt) == 1:
            return learnt, 0
        # Second watch: the highest-level literal among the rest.
        best = max(range(1, len(learnt)), key=lambda i: self._level[abs(learnt[i])])
        learnt[1], learnt[best] = learnt[best], learnt[1]
        return learnt, self._level[abs(learnt[1])]

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _pick_branch(self) -> Optional[int]:
        while self._order:
            _, var = heappop(self._order)
            if self._assign[var] == 0:
                return var if self._phase[var] > 0 else -var
        for var in range(1, self._num_vars + 1):
            if self._assign[var] == 0:
                return var if self._phase[var] > 0 else -var
        return None

    def solve(
        self,
        assumptions: Iterable[int] = (),
        conflict_budget: Optional[int] = None,
    ) -> Optional[bool]:
        """Search under ``assumptions``.

        Returns ``True`` / ``False`` / ``None`` (conflict budget hit).
        Learned clauses persist across calls, which is what makes the
        makespan-tightening loop incremental.
        """
        self.stats.sat_calls += 1
        if self._unsat:
            return False
        assumed = list(assumptions)
        self._backtrack(0)
        if self._propagate() is not None:
            self._unsat = True
            return False
        conflicts_this_call = 0
        restart_round = 1
        restart_limit = 64 * luby(restart_round)
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_this_call += 1
                if self._decision_level() == 0:
                    self._unsat = True
                    return False
                if (
                    conflict_budget is not None
                    and conflicts_this_call > conflict_budget
                ):
                    self._backtrack(0)
                    return None
                learnt, back_level = self._analyze(conflict)
                self._backtrack(back_level)
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        self._unsat = True
                        return False
                else:
                    self._attach(learnt)
                    self._clause_count += 1
                    self.stats.learned_clauses += 1
                    if not self._enqueue(learnt[0], learnt):
                        self._unsat = True
                        return False
                self._var_inc /= 0.95
                if conflicts_this_call >= restart_limit:
                    self.stats.restarts += 1
                    restart_round += 1
                    restart_limit = (
                        conflicts_this_call + 64 * luby(restart_round)
                    )
                    self._backtrack(0)
                continue
            # Assumption placement: one pseudo-decision level each.
            next_lit: Optional[int] = None
            while self._decision_level() < len(assumed):
                candidate = assumed[self._decision_level()]
                value = self._value(candidate)
                if value == 1:
                    self._new_level()
                elif value == -1:
                    self._backtrack(0)
                    return False
                else:
                    next_lit = candidate
                    break
            if next_lit is None:
                next_lit = self._pick_branch()
                if next_lit is None:
                    self._model = list(self._assign)
                    self._backtrack(0)
                    return True
                self.stats.decisions += 1
            self._new_level()
            self._enqueue(next_lit, None)

    def model_value(self, lit: int) -> bool:
        """Truth of ``lit`` in the most recent satisfying model."""
        if not self._model:
            raise RuntimeError("no model: last solve() did not return True")
        v = self._model[abs(lit)]
        return (v > 0) if lit > 0 else (v < 0)


# ----------------------------------------------------------------------
# CP-style propagation layer
# ----------------------------------------------------------------------


@dataclass
class _ArcTask:
    span: int
    resource: Optional[str]
    est: int = 0
    lst: int = 0


class BoundsPropagator:
    """Bounds-consistency windows over a precedence graph.

    Tasks issue at integer cycles in ``[0, horizon)``; an *arc*
    ``(before, after, delay)`` constrains ``issue(after) >=
    issue(before) + delay``.  A task's *span* is how many trailing
    cycles its issue reserves against the horizon (1 for ordinary
    tasks; a pinned delivery with latency L reserves L).

    :meth:`propagate` tightens every ``[est, lst]`` window to fixpoint
    and reports infeasibility; :meth:`lower_bound` returns an
    admissible makespan bound (critical path vs. busiest resource).
    """

    def __init__(self, horizon: int) -> None:
        self.horizon = horizon
        self._tasks: Dict[int, _ArcTask] = {}
        self._arcs: List[Tuple[int, int, int]] = []
        self.infeasible = False

    def add_task(
        self, task_id: int, resource: Optional[str] = None, span: int = 1
    ) -> None:
        self._tasks[task_id] = _ArcTask(
            span=span,
            resource=resource,
            est=0,
            lst=self.horizon - span,
        )
        if self.horizon - span < 0:
            self.infeasible = True

    def add_arc(self, before: int, after: int, delay: int) -> None:
        self._arcs.append((before, after, delay))

    def propagate(self) -> bool:
        """Tighten windows to fixpoint; ``False`` when infeasible."""
        if self.infeasible:
            return False
        changed = True
        rounds = 0
        while changed:
            changed = False
            rounds += 1
            if rounds > len(self._tasks) + 2:
                # Positive-delay cycles cannot happen in a DAG; guard
                # against a malformed input looping forever.
                self.infeasible = True
                return False
            for before, after, delay in self._arcs:
                b, a = self._tasks[before], self._tasks[after]
                if b.est + delay > a.est:
                    a.est = b.est + delay
                    changed = True
                if a.lst - delay < b.lst:
                    b.lst = a.lst - delay
                    changed = True
        for task in self._tasks.values():
            if task.est > task.lst:
                self.infeasible = True
                return False
        # Light Hall check per resource: n single-slot tasks cannot fit
        # in a shared window narrower than n cycles.
        by_resource: Dict[str, List[_ArcTask]] = {}
        for task in self._tasks.values():
            if task.resource is not None:
                by_resource.setdefault(task.resource, []).append(task)
        for tasks in by_resource.values():
            lo = min(t.est for t in tasks)
            hi = max(t.lst for t in tasks)
            if hi - lo + 1 < len(tasks):
                self.infeasible = True
                return False
        return True

    def window(self, task_id: int) -> Tuple[int, int]:
        """Inclusive ``(est, lst)`` issue window of a task."""
        task = self._tasks[task_id]
        return task.est, task.lst

    def lower_bound(self) -> int:
        """Admissible makespan lower bound (cycles)."""
        if not self._tasks:
            return 0
        critical = max(t.est + t.span for t in self._tasks.values())
        counts: Dict[str, int] = {}
        for task in self._tasks.values():
            if task.resource is not None:
                counts[task.resource] = counts.get(task.resource, 0) + 1
        busiest = max(counts.values()) if counts else 0
        return max(critical, busiest)


# ----------------------------------------------------------------------
# Cardinality helpers (shared by the encoder)
# ----------------------------------------------------------------------


def add_at_most_one(solver: CDCLSolver, lits: List[int]) -> None:
    """At most one of ``lits`` true (pairwise for tiny sets, else a
    sequential counter)."""
    if len(lits) <= 1:
        return
    if len(lits) <= 5:
        for i in range(len(lits)):
            for j in range(i + 1, len(lits)):
                solver.add_clause([-lits[i], -lits[j]])
        return
    add_at_most_k(solver, lits, 1)


def add_at_most_k(solver: CDCLSolver, lits: List[int], k: int) -> None:
    """Sinz sequential-counter encoding of ``sum(lits) <= k``."""
    n = len(lits)
    if k >= n:
        return
    if k <= 0:
        for lit in lits:
            solver.add_clause([-lit])
        return
    # s[i][j]: at least j+1 of the first i+1 literals are true.
    s = [[solver.new_var() for _ in range(k)] for _ in range(n)]
    solver.add_clause([-lits[0], s[0][0]])
    for i in range(1, n):
        solver.add_clause([-lits[i], s[i][0]])
        solver.add_clause([-s[i - 1][0], s[i][0]])
        for j in range(1, k):
            solver.add_clause([-lits[i], -s[i - 1][j - 1], s[i][j]])
            solver.add_clause([-s[i - 1][j], s[i][j]])
        solver.add_clause([-lits[i], -s[i - 1][k - 1]])
