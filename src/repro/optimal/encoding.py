"""Lowering one functional-unit assignment to boolean constraints.

The optimal backend searches the same space as the covering engine —
per-assignment spill-free schedules of the materialised
:class:`~repro.covering.taskgraph.TaskGraph` — but exhaustively: a SAT
model *is* a schedule, and UNSAT at makespan ``L`` *proves* no schedule
of length ``<= L`` exists under that assignment.

Variables (per task ``t`` with CP-pruned issue window ``[est, lst]``):

``x[t,c]``
    task ``t`` issues at cycle ``c`` (exactly one per task).
``issued[t,c]``
    the ladder ``issue(t) <= c`` — made *exact* (``issued[t,c] ->
    issued[t,c-1] or x[t,c]``) so it can serve three masters: at-most-one
    issue per task, dependence ordering, and live-range tracking.
``live[t,c]``
    delivery ``t`` occupies a register of its bank at the end of cycle
    ``c`` — forced true exactly when the checker's recomputed live range
    (:func:`repro.verify.checker._check_banks` semantics) covers ``c``.

Constraints:

1. exactly one issue cycle per task (ladder encoding);
2. dependence ordering with latencies: ``x[t,c] -> issued[d, c - L(d)]``;
3. per-cycle resource exclusivity (unit / bus slots, paper Section IV-C);
4. ISDL "never" constraints: per cycle, one matched-term indicator per
   constraint term, and not all terms may match (paper Section III);
5. register-bank occupancy: per bank and cycle, at most ``size`` live
   deliveries (sequential-counter cardinality);
6. pinned branch conditions reserve their bank through block end and
   extend the makespan by their latency.

Makespan minimisation happens *outside* the encoding: the driver builds
one encoding at the entry horizon and tightens the bound with
**assumptions only** — the assumption for "length <= L" is the
conjunction of ladder literals ``issued[t, L - need(t)]``, so learned
clauses survive every tightening step (iterative UNSAT-tightening).

Honesty notes (also in ``docs/optimality.md``): transfer-path selection
inside an assignment follows the TaskGraph's deterministic
least-congested choice, and spilled schedules are not enumerated — the
same scope as ``baselines.exhaustive``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.covering.taskgraph import TaskGraph, TaskKind
from repro.optimal.solver import (
    BoundsPropagator,
    CDCLSolver,
    add_at_most_k,
    add_at_most_one,
)


class AssignmentEncoding:
    """SAT encoding of "this assignment schedules in ``<= horizon``
    cycles", supporting assumption-based tightening to any smaller
    bound."""

    def __init__(self, graph: TaskGraph, horizon: int) -> None:
        self.graph = graph
        self.horizon = horizon
        self.solver = CDCLSolver()
        self.infeasible = False
        self.lower_bound = 0
        #: inclusive issue windows after CP propagation.
        self.windows: Dict[int, Tuple[int, int]] = {}
        self._x: Dict[int, Dict[int, int]] = {}
        self._issued: Dict[int, Dict[int, int]] = {}
        #: constant-true literal (a fixed variable), for window edges.
        self._true = self.solver.new_var()
        self.solver.add_clause([self._true])
        self._consumers = {
            t: graph.consumers_of(t) for t in graph.task_ids()
        }
        if not self._propagate_windows():
            self.infeasible = True
            return
        self._build_issue_ladders()
        self._build_dependences()
        self._build_resource_exclusivity()
        self._build_isdl_constraints()
        self._build_bank_occupancy()

    # ------------------------------------------------------------------
    # CP layer: prune windows before building any clause
    # ------------------------------------------------------------------

    def _span(self, task_id: int) -> int:
        """Trailing cycles the task's issue reserves against the horizon
        (pinned deliveries must also *complete* inside the block)."""
        if task_id in self.graph.pinned:
            return self.graph.latency(task_id)
        return 1

    def _propagate_windows(self) -> bool:
        graph = self.graph
        cp = BoundsPropagator(self.horizon)
        for task_id in graph.task_ids():
            cp.add_task(
                task_id,
                resource=graph.tasks[task_id].resource,
                span=self._span(task_id),
            )
        for task_id in graph.task_ids():
            for dep in graph.tasks[task_id].dependencies():
                cp.add_arc(dep, task_id, graph.latency(dep))
        if not cp.propagate():
            return False
        self.lower_bound = cp.lower_bound()
        for task_id in graph.task_ids():
            self.windows[task_id] = cp.window(task_id)
        return True

    # ------------------------------------------------------------------
    # Literal accessors (constants folded at the window edges)
    # ------------------------------------------------------------------

    def x_lit(self, task_id: int, cycle: int) -> Optional[int]:
        """The ``x[t,c]`` variable, or ``None`` outside the window."""
        return self._x[task_id].get(cycle)

    def issued_lit(self, task_id: int, cycle: int) -> int:
        """Literal for ``issue(t) <= cycle`` (constant at the edges)."""
        est, lst = self.windows[task_id]
        if cycle < est:
            return -self._true
        if cycle >= lst:
            return self._true
        return self._issued[task_id][cycle]

    def _add(self, lits: List[int]) -> None:
        """Add a clause, folding the constant-true variable away."""
        if self._true in lits:
            return
        reduced = [l for l in lits if l != -self._true]
        if not self.solver.add_clause(reduced):
            self.infeasible = True

    # ------------------------------------------------------------------
    # Constraint builders
    # ------------------------------------------------------------------

    def _build_issue_ladders(self) -> None:
        for task_id, (est, lst) in sorted(self.windows.items()):
            xs = {
                c: self.solver.new_var() for c in range(est, lst + 1)
            }
            self._x[task_id] = xs
            ladder = {
                c: self.solver.new_var() for c in range(est, lst)
            }
            self._issued[task_id] = ladder
            # At least one issue cycle.
            self._add([xs[c] for c in range(est, lst + 1)])
            for c in range(est, lst + 1):
                below = self.issued_lit(task_id, c - 1)
                here = self.issued_lit(task_id, c)
                # x -> issued, monotone chain, and exactness
                # (issued[c] -> issued[c-1] or x[c]).
                self._add([-xs[c], here])
                self._add([-below, here])
                self._add([-here, below, xs[c]])
                # At most one issue: x[c] forbids any earlier issue.
                self._add([-xs[c], -below])

    def _build_dependences(self) -> None:
        graph = self.graph
        for task_id in graph.task_ids():
            for dep in graph.tasks[task_id].dependencies():
                delay = graph.latency(dep)
                for c, x in self._x[task_id].items():
                    self._add([-x, self.issued_lit(dep, c - delay)])

    def _build_resource_exclusivity(self) -> None:
        graph = self.graph
        by_resource: Dict[str, List[int]] = {}
        for task_id in graph.task_ids():
            by_resource.setdefault(
                graph.tasks[task_id].resource, []
            ).append(task_id)
        for resource, members in sorted(by_resource.items()):
            if len(members) < 2:
                continue
            for cycle in range(self.horizon):
                lits = [
                    self._x[t][cycle]
                    for t in members
                    if cycle in self._x[t]
                ]
                add_at_most_one(self.solver, lits)

    def _build_isdl_constraints(self) -> None:
        """Per cycle, forbid any word matching every term of a "never"
        constraint — the exact semantics of the independent checker:
        a term matches when *some* slot carries the named resource (and
        op, unless the term op is the wildcard)."""
        graph = self.graph
        for constraint in graph.machine.constraints:
            candidates: List[List[int]] = []
            for term in constraint.terms:
                matching = [
                    t
                    for t in graph.task_ids()
                    if self._term_matches(t, term.resource, term.op_name)
                ]
                candidates.append(matching)
            if any(not group for group in candidates):
                continue  # some term can never match: constraint is moot
            for cycle in range(self.horizon):
                term_lits: List[int] = []
                feasible = True
                for group in candidates:
                    xs = [
                        self._x[t][cycle]
                        for t in group
                        if cycle in self._x[t]
                    ]
                    if not xs:
                        feasible = False
                        break
                    if len(xs) == 1:
                        term_lits.append(xs[0])
                    else:
                        matched = self.solver.new_var()
                        for x in xs:
                            self._add([-x, matched])
                        term_lits.append(matched)
                if not feasible:
                    continue
                self._add([-lit for lit in term_lits])

    def _term_matches(self, task_id: int, resource: str, op_name: str) -> bool:
        task = self.graph.tasks[task_id]
        if task.resource != resource:
            return False
        if op_name == "*":
            return True
        return task.kind is TaskKind.OP and task.op_name == op_name

    def _build_bank_occupancy(self) -> None:
        """Checker-exact live ranges + per-cycle cardinality.

        A delivery is live at (the end of) cycle ``c`` when it has
        issued by ``c`` and its last consumer has not (dead results:
        through issue + latency; pinned conditions: through block end).
        """
        graph = self.graph
        sizes = {rf.name: rf.size for rf in graph.machine.register_files}
        deliveries: Dict[str, List[int]] = {}
        for task_id in graph.register_deliveries():
            deliveries.setdefault(
                graph.tasks[task_id].dest_storage, []
            ).append(task_id)
        live: Dict[Tuple[int, int], int] = {}
        for bank, members in sorted(deliveries.items()):
            capacity = sizes[bank]
            if len(members) <= capacity:
                continue  # the bank can hold every delivery at once
            for t in members:
                est, _ = self.windows[t]
                consumers = self._consumers[t]
                pinned = t in self.graph.pinned
                latency = graph.latency(t)
                for c in range(est, self.horizon):
                    var = self.solver.new_var()
                    live[(t, c)] = var
                    issued_t = self.issued_lit(t, c)
                    if pinned:
                        # Pinned: live from issue through block end.
                        self._add([-issued_t, var])
                        continue
                    if not consumers:
                        # Dead result: live for `latency` cycles.
                        self._add(
                            [
                                -issued_t,
                                self.issued_lit(t, c - latency),
                                var,
                            ]
                        )
                        continue
                    for u in consumers:
                        # Consumer not yet issued at c => still live.
                        self._add(
                            [-issued_t, self.issued_lit(u, c), var]
                        )
            for cycle in range(self.horizon):
                lits = [
                    live[(t, cycle)]
                    for t in members
                    if (t, cycle) in live
                ]
                add_at_most_k(self.solver, lits, capacity)

    # ------------------------------------------------------------------
    # Solving and decoding
    # ------------------------------------------------------------------

    def assumptions_for(self, length: int) -> Optional[List[int]]:
        """Assumption literals forcing schedule length ``<= length``;
        ``None`` when some task provably cannot fit (trivially UNSAT)."""
        assumptions: List[int] = []
        for task_id in sorted(self.windows):
            limit = length - self._span(task_id)
            lit = self.issued_lit(task_id, limit)
            if lit == -self._true:
                return None
            if lit == self._true:
                continue
            assumptions.append(lit)
        return assumptions

    def solve(
        self, length: int, conflict_budget: Optional[int] = None
    ) -> Optional[bool]:
        """SAT/UNSAT/budget-exhausted for "schedules in <= length"."""
        if self.infeasible:
            return False
        if length < self.lower_bound:
            return False
        assumptions = self.assumptions_for(length)
        if assumptions is None:
            return False
        return self.solver.solve(assumptions, conflict_budget)

    def schedule_from_model(self) -> Dict[int, int]:
        """``task id -> issue cycle`` decoded from the current model."""
        cycle_of: Dict[int, int] = {}
        for task_id, xs in self._x.items():
            for cycle, var in xs.items():
                if self.solver.model_value(var):
                    cycle_of[task_id] = cycle
                    break
        return cycle_of

    def achieved_length(self, cycle_of: Dict[int, int]) -> int:
        """Block length implied by a decoded schedule."""
        if not cycle_of:
            return 0
        return max(
            cycle + self._span(task_id)
            for task_id, cycle in cycle_of.items()
        )
