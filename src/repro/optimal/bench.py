"""Corpus-wide optimality-gap reports — ``BENCH_optimal.json``.

``BENCH_cover.json`` tracks how *fast* the heuristic searches;
``BENCH_optimal.json`` tracks how *good* its answers are: for every
(workload, machine, clique kernel) triple the heuristic engine's block
length is compared against the constraint solver's provably minimal
one, turning the paper's "the hand-coded results are all optimal"
column into a measured, regenerable artifact.

Schema (``repro/bench-optimal/v1``)::

    {
      "schema": "repro/bench-optimal/v1",
      "summary": {
        "blocks": 12, "proven": 12, "improved": 7,
        "gap_cycles": 13, "budget_exhausted": 0
      },
      "entries": [
        {
          "workload": "Ex5", "machine": "arch1_r4", "registers": 4,
          "kernel": "bitmask",
          "heuristic_cost": 15, "optimal_cost": 12, "gap": 3,
          "proven": true, "spill_free": true, "heuristic_spills": 0,
          "cpu_seconds": 1.43,
          "solver": { ... OptimalSolveResult.stats_dict() ... }
        }, ...
      ]
    }

Honesty: ``proven`` is per entry; a budget-exhausted solve keeps the
heuristic cost as an upper bound and says so (``budget_exhausted`` in
``solver``), it never pretends the gap is closed.  Written by
``benchmarks/test_bench_optimal.py`` and ``repro gap --json``; CI's
``optimal-smoke`` job regenerates and schema-validates it on every
push.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

OPTIMAL_BENCH_SCHEMA = "repro/bench-optimal/v1"

#: Integer statistics every entry's ``solver`` object must carry.
SOLVER_STAT_KEYS = (
    "assignments_searched",
    "unsat_assignments",
    "sat_calls",
    "conflicts",
    "decisions",
    "propagations",
    "learned_clauses",
    "restarts",
    "variables",
    "clauses",
)

#: The gap-bench corpus: (workload, machine key, registers per file).
#: The Table-I workloads on the example architecture at 4 registers,
#: the paper's spill rows (Ex6/Ex7 = Ex4/Ex5 at 2 registers), and the
#: Table-II retargetability sweep on Architecture II.
GAP_WORKLOADS: Tuple[Tuple[str, str, int], ...] = (
    ("Ex1", "arch1", 4),
    ("Ex2", "arch1", 4),
    ("Ex3", "arch1", 4),
    ("Ex4", "arch1", 4),
    ("Ex5", "arch1", 4),
    ("Ex4", "arch1", 2),
    ("Ex5", "arch1", 2),
    ("Ex1", "arch2", 4),
    ("Ex2", "arch2", 4),
    ("Ex3", "arch2", 4),
    ("Ex4", "arch2", 4),
    ("Ex5", "arch2", 4),
)


def collect_optimal_bench(
    workloads: Optional[List[Tuple[str, str, int]]] = None,
    kernels: Tuple[str, ...] = ("bitmask", "reference"),
    conflict_budget: Optional[int] = 50_000,
) -> List[Dict[str, Any]]:
    """Solve each gap-bench workload to proven optimality (or budget).

    The clique kernel only steers the *heuristic seed* compile — the
    exact search is kernel-independent — so running both kernels also
    cross-checks that neither kernel's schedule beats the other's gap.
    Returns the ``entries`` payload of ``BENCH_optimal.json``.
    """
    from repro.covering.config import HeuristicConfig
    from repro.isdl.builtin_machines import BUILTIN_MACHINES
    from repro.optimal import optimal_block_solution
    from repro.eval.workloads import WORKLOADS

    table = GAP_WORKLOADS if workloads is None else workloads
    by_name = {load.name: load for load in WORKLOADS}
    entries: List[Dict[str, Any]] = []
    for name, machine_key, registers in table:
        load = by_name[name]
        machine = BUILTIN_MACHINES[machine_key](registers)
        for kernel in kernels:
            config = HeuristicConfig.default().with_(clique_kernel=kernel)
            result = optimal_block_solution(
                load.build(),
                machine,
                config=config,
                conflict_budget=conflict_budget,
            )
            entries.append(
                {
                    "workload": name,
                    "machine": machine.name,
                    "registers": registers,
                    "kernel": kernel,
                    "heuristic_cost": result.heuristic_cost,
                    "optimal_cost": result.cost,
                    "gap": result.gap,
                    "proven": result.proven,
                    "spill_free": result.spill_free,
                    "heuristic_spills": (
                        result.heuristic_solution.spill_count
                    ),
                    "cpu_seconds": result.cpu_seconds,
                    "solver": result.stats_dict(),
                }
            )
    return entries


def summarize_optimal_bench(
    entries: List[Dict[str, Any]],
) -> Dict[str, int]:
    """Corpus-wide totals for the report's ``summary`` object."""
    return {
        "blocks": len(entries),
        "proven": sum(1 for e in entries if e["proven"]),
        "improved": sum(1 for e in entries if e["gap"] > 0),
        "gap_cycles": sum(e["gap"] for e in entries),
        "budget_exhausted": sum(
            1 for e in entries if e["solver"]["budget_exhausted"]
        ),
    }


def make_optimal_report(entries: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Wrap gap entries in the versioned envelope (with the summary)."""
    return {
        "schema": OPTIMAL_BENCH_SCHEMA,
        "summary": summarize_optimal_bench(entries),
        "entries": list(entries),
    }


def write_optimal_report(path: str, entries: List[Dict[str, Any]]) -> None:
    """Write a schema-valid ``BENCH_optimal.json`` (validated first)."""
    payload = make_optimal_report(entries)
    validate_optimal_report(payload)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def validate_optimal_report(payload: Any) -> None:
    """Raise :class:`ValueError` unless ``payload`` matches the
    ``repro/bench-optimal/v1`` schema."""
    if not isinstance(payload, dict):
        raise ValueError("optimal bench report must be a JSON object")
    if payload.get("schema") != OPTIMAL_BENCH_SCHEMA:
        raise ValueError(
            f"optimal bench schema must be {OPTIMAL_BENCH_SCHEMA!r}, "
            f"got {payload.get('schema')!r}"
        )
    entries = payload.get("entries")
    if not isinstance(entries, list) or not entries:
        raise ValueError(
            "optimal bench report needs a non-empty 'entries' list"
        )
    for position, entry in enumerate(entries):
        where = f"entry #{position}"
        if not isinstance(entry, dict):
            raise ValueError(f"{where} is not an object")
        for key in ("workload", "machine", "kernel"):
            if not isinstance(entry.get(key), str) or not entry[key]:
                raise ValueError(f"{where}: missing string {key!r}")
        for key in (
            "registers",
            "heuristic_cost",
            "optimal_cost",
            "gap",
            "heuristic_spills",
        ):
            value = entry.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(f"{where}: {key!r} must be an int")
        for key in ("proven", "spill_free"):
            if not isinstance(entry.get(key), bool):
                raise ValueError(f"{where}: {key!r} must be a bool")
        seconds = entry.get("cpu_seconds")
        if not isinstance(seconds, (int, float)) or seconds < 0:
            raise ValueError(
                f"{where}: 'cpu_seconds' must be a non-negative number"
            )
        if entry["gap"] != entry["heuristic_cost"] - entry["optimal_cost"]:
            raise ValueError(
                f"{where}: gap {entry['gap']} != heuristic "
                f"{entry['heuristic_cost']} - optimal "
                f"{entry['optimal_cost']}"
            )
        if entry["gap"] < 0:
            raise ValueError(
                f"{where}: negative gap — the solver reported a cost "
                f"worse than the heuristic seed, which the driver "
                f"guarantees cannot happen"
            )
        solver = entry.get("solver")
        if not isinstance(solver, dict):
            raise ValueError(f"{where}: missing 'solver' object")
        for key in SOLVER_STAT_KEYS:
            value = solver.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(
                    f"{where}: solver stat {key!r} must be an int"
                )
        if not isinstance(solver.get("budget_exhausted"), bool):
            raise ValueError(
                f"{where}: solver 'budget_exhausted' must be a bool"
            )
        if entry["proven"] and solver["budget_exhausted"]:
            raise ValueError(
                f"{where}: 'proven' with an exhausted budget is a "
                f"contradiction"
            )
    summary = payload.get("summary")
    if not isinstance(summary, dict):
        raise ValueError("optimal bench report needs a 'summary' object")
    expected = summarize_optimal_bench(entries)
    if summary != expected:
        raise ValueError(
            f"optimal bench summary {summary} does not match the "
            f"entries (expect {expected})"
        )


def format_gap_table(entries: List[Dict[str, Any]]) -> str:
    """Human-readable gap table (one line per entry, plus totals)."""
    lines = [
        "workload  machine       regs  kernel     heur  opt  gap  "
        "proven  spill-free"
    ]
    for entry in entries:
        proven = "yes" if entry["proven"] else "NO"
        spill_free = "yes" if entry["spill_free"] else "no"
        lines.append(
            f"{entry['workload']:8s}  {entry['machine']:12s}  "
            f"{entry['registers']:4d}  {entry['kernel']:9s}  "
            f"{entry['heuristic_cost']:4d}  {entry['optimal_cost']:3d}  "
            f"{entry['gap']:3d}  {proven:6s}  {spill_free}"
        )
    summary = summarize_optimal_bench(entries)
    lines.append(
        f"{summary['blocks']} block(s): {summary['proven']} proven, "
        f"{summary['improved']} improved by the solver, "
        f"{summary['gap_cycles']} gap cycle(s) total, "
        f"{summary['budget_exhausted']} budget-exhausted"
    )
    return "\n".join(lines)
