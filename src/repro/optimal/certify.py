"""Decoding SAT models into certified :class:`BlockSolution` objects.

A model is only as trustworthy as the encoding that produced it, so the
optimal backend never hands a schedule downstream on its own authority:
every decoded model is replayed through two *independent* checkers —
the :meth:`BlockSolution.validate` structural invariants and the full
translation validator (:func:`repro.verify.verify_solution`), the same
code paths that audit the heuristic engine.  A model that fails either
is a bug in the encoder or solver and raises
:class:`~repro.errors.VerificationError` rather than propagating a
wrong "optimal" schedule.
"""

from __future__ import annotations

from typing import Dict, List

from repro.covering.assignment import Assignment
from repro.covering.solution import BlockSolution
from repro.covering.taskgraph import TaskGraph
from repro.errors import VerificationError


def occupancy_profile(
    graph: TaskGraph, cycle_of: Dict[int, int], length: int
) -> Dict[str, List[int]]:
    """Per-bank live-value counts per cycle (checker semantics)."""
    machine = graph.machine
    sizes = {rf.name: rf.size for rf in machine.register_files}
    consumers: Dict[int, List[int]] = {}
    for task_id in cycle_of:
        for read in graph.tasks[task_id].reads:
            if read.producer is not None:
                consumers.setdefault(read.producer, []).append(task_id)
    profile: Dict[str, List[int]] = {
        bank: [0] * length for bank in sizes
    }
    for task_id, def_cycle in sorted(cycle_of.items()):
        task = graph.tasks[task_id]
        bank = task.dest_storage
        if bank not in sizes:
            continue
        uses = [cycle_of[c] for c in consumers.get(task_id, [])]
        if uses:
            last_use = max(uses)
        else:
            last_use = def_cycle + graph.latency(task_id)
        if task_id in graph.pinned:
            last_use = max(last_use, length)
        for cycle in range(def_cycle, min(last_use, length)):
            profile[bank][cycle] += 1
    return profile


def solution_from_model(
    graph: TaskGraph,
    assignment: Assignment,
    cycle_of: Dict[int, int],
    length: int,
    assignments_explored: int,
) -> BlockSolution:
    """Build and certify a :class:`BlockSolution` from a decoded model.

    Raises:
        VerificationError: the model does not stand up to the
            independent validator — an encoder or solver bug, never a
            schedule to be trusted.
    """
    schedule: List[List[int]] = [[] for _ in range(length)]
    for task_id, cycle in sorted(cycle_of.items()):
        schedule[cycle].append(task_id)
    profile = occupancy_profile(graph, cycle_of, length)
    register_estimate = {
        bank: max(counts) if counts else 0
        for bank, counts in sorted(profile.items())
    }
    solution = BlockSolution(
        machine_name=graph.machine.name,
        sn=graph.sn,
        assignment=assignment,
        graph=graph,
        schedule=schedule,
        register_estimate=register_estimate,
        spill_count=0,
        reload_count=0,
        assignments_explored=assignments_explored,
    )
    certify_solution(solution)
    return solution


def certify_solution(solution: BlockSolution) -> None:
    """Replay a solver schedule through both independent checkers."""
    # Lazy import mirrors the engine: verify stays import-independent
    # of the layers it audits.
    from repro.verify import verify_solution

    try:
        solution.validate()
    except AssertionError as error:
        raise VerificationError(
            f"solver schedule failed structural validation: {error}"
        )
    report = verify_solution(solution, block_name="optimal")
    if not report.ok:
        raise VerificationError(
            "solver schedule failed translation validation "
            f"({len(report.violations)} violation(s)):\n"
            + "\n".join(v.describe() for v in report.violations),
            violations=report.violations,
        )
