"""The optimal backend: a constraint-solver oracle for assignment +
covering + scheduling.

Where :mod:`repro.baselines.exhaustive` branches over shrunk maximal
cliques, this package encodes each functional-unit assignment's task
graph as a boolean constraint problem (:mod:`repro.optimal.encoding`),
solves it with a pure-python CDCL SAT core plus CP bounds propagation
(:mod:`repro.optimal.solver`), tightens the makespan bound by bound
under assumptions until UNSAT proves optimality, and replays every
model through the independent translation validator before trusting it
(:mod:`repro.optimal.certify`).

Entry point: :func:`optimal_block_solution` — returns an
:class:`OptimalSolveResult` carrying the best cost, whether it is
*proven* optimal (within the search scope), the certified solver
schedule when it beats the heuristic, and full solver statistics.

Scope and honesty (details in ``docs/optimality.md``):

- the search space is ``explore_assignments(heuristics_off)`` ×
  spill-free schedules of each assignment's deterministic
  :class:`TaskGraph` — the same scope as ``baselines.exhaustive``, so
  the two oracles are differentially comparable;
- the heuristic engine's result seeds the upper bound, so the reported
  cost is **never worse than the heuristic's**;
- schedules requiring spills are not enumerated; when the heuristic
  needed spills and no spill-free schedule beats it, the heuristic
  result stands and ``spill_free`` is ``False``;
- ``proven`` is ``True`` only when every assignment was either solved
  to UNSAT at the final bound or shown infeasible, with no conflict
  budget exhaustion and no assignment truncation.

Unlike the branch-and-bound baseline, the solver handles multi-cycle
operation latencies natively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.covering.config import HeuristicConfig
from repro.covering.engine import generate_block_solution
from repro.covering.solution import BlockSolution
from repro.covering.taskgraph import TaskGraph
from repro.ir.dag import BlockDAG
from repro.isdl.model import Machine
from repro.optimal.bench import (
    GAP_WORKLOADS,
    OPTIMAL_BENCH_SCHEMA,
    collect_optimal_bench,
    format_gap_table,
    make_optimal_report,
    summarize_optimal_bench,
    validate_optimal_report,
    write_optimal_report,
)
from repro.optimal.certify import certify_solution, solution_from_model
from repro.optimal.encoding import AssignmentEncoding
from repro.optimal.solver import BoundsPropagator, CDCLSolver, SolverStats
from repro.sndag.build import SplitNodeDAG, build_split_node_dag
from repro.telemetry.clock import Stopwatch
from repro.telemetry.session import current as _telemetry

__all__ = [
    "AssignmentEncoding",
    "GAP_WORKLOADS",
    "BoundsPropagator",
    "CDCLSolver",
    "OPTIMAL_BENCH_SCHEMA",
    "OptimalSolveResult",
    "SolverStats",
    "certify_solution",
    "collect_optimal_bench",
    "format_gap_table",
    "make_optimal_report",
    "optimal_block_solution",
    "solution_from_model",
    "summarize_optimal_bench",
    "validate_optimal_report",
    "write_optimal_report",
]

#: Default total conflict budget across the whole block solve.
DEFAULT_CONFLICT_BUDGET = 50_000


@dataclass
class OptimalSolveResult:
    """Outcome of one optimal-backend block solve."""

    #: Best known block length (cycles); never worse than the heuristic.
    cost: int
    #: The heuristic engine's block length for the same (dag, machine,
    #: pin) — the seed upper bound.
    heuristic_cost: int
    #: True when the search completed: no budget exhaustion, no
    #: assignment truncation (see the package docstring for scope).
    proven: bool
    #: Certified solver schedule when it strictly beats the heuristic;
    #: ``None`` when the heuristic result already matches the optimum
    #: (or the budget ran out before an improvement was found).
    solution: Optional[BlockSolution]
    #: The heuristic engine's solution (always available).
    heuristic_solution: BlockSolution
    assignments_searched: int
    #: Assignments with no spill-free schedule under the final bound.
    unsat_assignments: int
    sat_calls: int
    conflicts: int
    decisions: int
    propagations: int
    learned_clauses: int
    restarts: int
    variables: int
    clauses: int
    conflict_budget: Optional[int]
    budget_exhausted: bool
    cpu_seconds: float = 0.0

    @property
    def gap(self) -> int:
        """Heuristic optimality gap in cycles (``>= 0`` always)."""
        return self.heuristic_cost - self.cost

    @property
    def spill_free(self) -> bool:
        """Whether the reported cost is achieved without spills."""
        if self.solution is not None:
            return True
        return self.heuristic_solution.spill_count == 0

    def best_solution(self) -> BlockSolution:
        """The schedule to emit: solver's when it won, else heuristic."""
        return (
            self.solution
            if self.solution is not None
            else self.heuristic_solution
        )

    def stats_dict(self) -> Dict[str, Any]:
        """JSON-safe solver statistics for reports and benches."""
        return {
            "assignments_searched": self.assignments_searched,
            "unsat_assignments": self.unsat_assignments,
            "sat_calls": self.sat_calls,
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "learned_clauses": self.learned_clauses,
            "restarts": self.restarts,
            "variables": self.variables,
            "clauses": self.clauses,
            "conflict_budget": self.conflict_budget,
            "budget_exhausted": self.budget_exhausted,
        }


def optimal_block_solution(
    dag: BlockDAG,
    machine: Machine,
    pin_value: Optional[int] = None,
    config: Optional[HeuristicConfig] = None,
    conflict_budget: Optional[int] = DEFAULT_CONFLICT_BUDGET,
    max_assignments: Optional[int] = None,
    sn: Optional[SplitNodeDAG] = None,
    heuristic_solution: Optional[BlockSolution] = None,
) -> OptimalSolveResult:
    """Provably minimal block length for ``dag`` on ``machine``.

    Runs the heuristic engine first (under ``config``) to seed the
    upper bound, then proves or improves it assignment by assignment:
    each assignment's task graph is encoded once at the current bound
    and tightened with solver assumptions until UNSAT.  Every improving
    model is decoded and certified by the independent validator before
    it is accepted.

    Args:
        dag: the block to schedule.
        machine: the target processor.
        pin_value: original-DAG id that must stay register-resident to
            block end (a branch condition), as in the engine.
        config: heuristic configuration for the *seed* compile only;
            the exact search always enumerates all assignments.
        conflict_budget: total CDCL conflicts across the whole solve
            (``None`` = unlimited).  Exhaustion returns the best
            incumbent with ``proven=False``.
        max_assignments: cap on assignments searched (``None`` = all);
            truncation also clears ``proven``.
        sn: pre-built Split-Node DAG, if the caller has one.
        heuristic_solution: pre-computed heuristic solution for the
            same (dag, machine, pin), to skip the seed compile.

    Raises:
        CoverageError: no complete assignment exists (mirrors the
            heuristic engine: the block is genuinely uncompilable).
    """
    tm = _telemetry()
    watch = Stopwatch()
    with watch, tm.span("optimal.block", category="optimal"):
        if sn is None:
            sn = build_split_node_dag(dag, machine)
        heuristic = heuristic_solution
        if heuristic is None:
            heuristic = generate_block_solution(
                dag,
                machine,
                config or HeuristicConfig.default(),
                pin_value=pin_value,
                sn=sn,
            )
        best_cost = heuristic.instruction_count
        best_decoded: Optional[BlockSolution] = None
        search_config = HeuristicConfig.heuristics_off()
        from repro.covering.assignment import explore_assignments

        assignments = explore_assignments(sn, search_config)
        truncated = (
            max_assignments is not None
            and len(assignments) > max_assignments
        )
        if truncated:
            assignments = assignments[:max_assignments]
        budget_exhausted = False
        unsat_assignments = 0
        totals = SolverStats()
        variables = 0
        clauses = 0
        for assignment in assignments:
            graph = TaskGraph(sn, assignment, pin_value=pin_value)
            task_ids = graph.task_ids()
            if not task_ids:
                if best_cost > 0:
                    best_cost = 0
                    best_decoded = solution_from_model(
                        graph, assignment, {}, 0, len(assignments)
                    )
                continue
            horizon = best_cost - 1
            if horizon < 1:
                # Nothing shorter than the incumbent can hold any task.
                continue
            encoding = AssignmentEncoding(graph, horizon)
            variables += encoding.solver.num_vars
            if encoding.infeasible:
                unsat_assignments += 1
                continue
            clauses += encoding.solver.num_clauses
            improved_here = False
            length = horizon
            while True:
                remaining: Optional[int] = None
                if conflict_budget is not None:
                    remaining = conflict_budget - (
                        totals.conflicts + encoding.solver.stats.conflicts
                    )
                    if remaining <= 0:
                        budget_exhausted = True
                        break
                verdict = encoding.solve(length, remaining)
                tm.count("optimal.sat_calls", 1)
                if verdict is True:
                    cycle_of = encoding.schedule_from_model()
                    achieved = encoding.achieved_length(cycle_of)
                    best_decoded = solution_from_model(
                        graph,
                        assignment,
                        cycle_of,
                        achieved,
                        len(assignments),
                    )
                    best_cost = achieved
                    improved_here = True
                    length = achieved - 1
                elif verdict is False:
                    if not improved_here:
                        unsat_assignments += 1
                    break
                else:
                    budget_exhausted = True
                    break
            _accumulate(totals, encoding.solver.stats)
            if budget_exhausted:
                break
        proven = not budget_exhausted and not truncated
        improved = (
            best_decoded is not None
            and best_cost < heuristic.instruction_count
        )
        solution = best_decoded if improved else None
    result = OptimalSolveResult(
        cost=best_cost if improved else heuristic.instruction_count,
        heuristic_cost=heuristic.instruction_count,
        proven=proven,
        solution=solution,
        heuristic_solution=heuristic,
        assignments_searched=len(assignments),
        unsat_assignments=unsat_assignments,
        sat_calls=totals.sat_calls,
        conflicts=totals.conflicts,
        decisions=totals.decisions,
        propagations=totals.propagations,
        learned_clauses=totals.learned_clauses,
        restarts=totals.restarts,
        variables=variables,
        clauses=clauses,
        conflict_budget=conflict_budget,
        budget_exhausted=budget_exhausted,
        cpu_seconds=watch.elapsed,
    )
    tm.count("optimal.blocks", 1)
    tm.count("optimal.assignments", result.assignments_searched)
    tm.count("optimal.unsat_assignments", result.unsat_assignments)
    tm.count("optimal.conflicts", result.conflicts)
    tm.count("optimal.decisions", result.decisions)
    tm.count("optimal.propagations", result.propagations)
    tm.count("optimal.learned_clauses", result.learned_clauses)
    tm.count("optimal.restarts", result.restarts)
    tm.count("optimal.variables", result.variables)
    tm.count("optimal.clauses", result.clauses)
    if result.proven:
        tm.count("optimal.proven", 1)
    if result.budget_exhausted:
        tm.count("optimal.budget_exhausted", 1)
    if result.solution is not None:
        tm.count("optimal.improved", 1)
        tm.count("optimal.gap_cycles", result.gap)
    return result


def _accumulate(totals: SolverStats, stats: SolverStats) -> None:
    totals.decisions += stats.decisions
    totals.propagations += stats.propagations
    totals.conflicts += stats.conflicts
    totals.learned_clauses += stats.learned_clauses
    totals.restarts += stats.restarts
    totals.sat_calls += stats.sat_calls
