"""Recursive-descent parser for minic.

Grammar::

    program   := stmt*
    stmt      := assign ";" | if | while | for
    assign    := target "=" expr
    target    := IDENT | IDENT "[" expr "]"
    if        := "if" "(" expr ")" block ["else" (block | if)]
    while     := "while" "(" expr ")" block
    for       := "for" "(" assign ";" expr ";" assign ")" block
    block     := "{" stmt* "}"

Expression precedence (low to high)::

    ||  &&  |  ^  &  ==/!=  </<=/>/>=  <</>>  +/-  */ /%  unary  primary

``&&`` and ``||`` are logical (result 0/1); since minic expressions are
side-effect free they evaluate both operands (no short-circuit).

``min(a, b)``, ``max(a, b)``, and ``abs(a)`` parse as primaries.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ParseError
from repro.frontend import ast
from repro.frontend.lexer import (
    EOF,
    IDENT,
    KEYWORD,
    NUMBER,
    OP,
    PRAGMA,
    PUNCT,
    Token,
    tokenize_source,
)

#: Binary precedence levels, weakest first.
_LEVELS: List[Tuple[str, ...]] = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._position = 0

    def _peek(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.kind is not EOF:
            self._position += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(
            f"{message} (found {token.text!r})", token.line, token.column
        )

    def _expect(self, kind: str, text: str = "") -> Token:
        token = self._peek()
        if token.kind != kind or (text and token.text != text):
            raise self._error(f"expected {text or kind}")
        return self._advance()

    def _accept(self, kind: str, text: str = "") -> bool:
        token = self._peek()
        if token.kind == kind and (not text or token.text == text):
            self._advance()
            return True
        return False

    # -- statements -------------------------------------------------------

    def parse_program(self) -> ast.Program:
        """Parse the token stream into a Program AST."""
        statements: List[ast.Stmt] = []
        while self._peek().kind is not EOF:
            statements.append(self._statement())
        return ast.Program(tuple(statements))

    def _statement(self) -> ast.Stmt:
        token = self._peek()
        if token.kind == PRAGMA:
            return self._pragma_statement()
        if token.kind == KEYWORD and token.text == "if":
            return self._if()
        if token.kind == KEYWORD and token.text == "while":
            return self._while()
        if token.kind == KEYWORD and token.text == "for":
            return self._for()
        assign = self._assign()
        self._expect(PUNCT, ";")
        return assign

    def _pragma_statement(self) -> ast.Stmt:
        pragma = self._advance()
        parts = pragma.text.split()
        if len(parts) == 2 and parts[0] == "unroll" and parts[1].isdigit():
            statement = self._statement()
            if not isinstance(statement, ast.For):
                raise self._error(
                    "#pragma unroll must precede a for loop"
                )
            return ast.For(
                statement.init,
                statement.cond,
                statement.step,
                statement.body,
                unroll=int(parts[1]),
            )
        raise self._error(f"unknown pragma {pragma.text!r}")

    def _assign(self) -> ast.Assign:
        name = self._expect(IDENT).text
        if self._accept(PUNCT, "["):
            index = self._expression()
            self._expect(PUNCT, "]")
            target: ast.Target = ast.Index(name, index)
        else:
            target = ast.Name(name)
        self._expect(OP, "=")
        return ast.Assign(target, self._expression())

    def _block(self) -> Tuple[ast.Stmt, ...]:
        self._expect(PUNCT, "{")
        statements: List[ast.Stmt] = []
        while not self._accept(PUNCT, "}"):
            if self._peek().kind is EOF:
                raise self._error("unterminated block")
            statements.append(self._statement())
        return tuple(statements)

    def _if(self) -> ast.If:
        self._expect(KEYWORD, "if")
        self._expect(PUNCT, "(")
        cond = self._expression()
        self._expect(PUNCT, ")")
        then = self._block()
        orelse: Tuple[ast.Stmt, ...] = ()
        if self._accept(KEYWORD, "else"):
            if self._peek().kind == KEYWORD and self._peek().text == "if":
                orelse = (self._if(),)
            else:
                orelse = self._block()
        return ast.If(cond, then, orelse)

    def _while(self) -> ast.While:
        self._expect(KEYWORD, "while")
        self._expect(PUNCT, "(")
        cond = self._expression()
        self._expect(PUNCT, ")")
        return ast.While(cond, self._block())

    def _for(self) -> ast.For:
        self._expect(KEYWORD, "for")
        self._expect(PUNCT, "(")
        init = self._assign()
        self._expect(PUNCT, ";")
        cond = self._expression()
        self._expect(PUNCT, ";")
        step = self._assign()
        self._expect(PUNCT, ")")
        return ast.For(init, cond, step, self._block())

    # -- expressions ------------------------------------------------------

    def _expression(self, level: int = 0) -> ast.Expr:
        if level >= len(_LEVELS):
            return self._unary()
        left = self._expression(level + 1)
        while True:
            token = self._peek()
            if token.kind == OP and token.text in _LEVELS[level]:
                self._advance()
                right = self._expression(level + 1)
                left = ast.Binary(token.text, left, right)
            else:
                return left

    def _unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == OP and token.text in ("-", "~", "!"):
            self._advance()
            return ast.Unary(token.text, self._unary())
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == NUMBER:
            self._advance()
            return ast.Num(int(token.text))
        if token.kind == KEYWORD and token.text in ("min", "max", "abs"):
            self._advance()
            self._expect(PUNCT, "(")
            first = self._expression()
            if token.text == "abs":
                self._expect(PUNCT, ")")
                return ast.Unary("abs", first)
            self._expect(PUNCT, ",")
            second = self._expression()
            self._expect(PUNCT, ")")
            return ast.Binary(token.text, first, second)
        if token.kind == IDENT:
            self._advance()
            if self._accept(PUNCT, "["):
                index = self._expression()
                self._expect(PUNCT, "]")
                return ast.Index(token.text, index)
            return ast.Name(token.text)
        if self._accept(PUNCT, "("):
            inner = self._expression()
            self._expect(PUNCT, ")")
            return inner
        raise self._error("expected an expression")


def parse_program(source: str) -> ast.Program:
    """Parse minic source text into an AST."""
    return _Parser(tokenize_source(source)).parse_program()
