"""The minic front end.

The paper uses SUIF+SPAM to turn C into basic-block expression DAGs with
control flow; this package provides the equivalent substrate: a small
C-like language ("minic") with assignments, arithmetic, comparisons,
``if``/``else``, ``while``, ``for``, and constant-indexed arrays,
lowered to :class:`repro.ir.Function` objects.

Arrays are resolved to scalar data-memory slots at lowering time, so
array indices must be compile-time constants *after* optimization — in
practice, after loops have been unrolled (see :mod:`repro.opt.unroll`).
"""

from repro.frontend.lexer import tokenize_source, Token
from repro.frontend.parser import parse_program
from repro.frontend.lower import lower_program, compile_source
from repro.frontend import ast

__all__ = [
    "tokenize_source",
    "Token",
    "parse_program",
    "lower_program",
    "compile_source",
    "ast",
]
