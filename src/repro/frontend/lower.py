"""Lowering minic ASTs to IR functions.

Straight-line statements accumulate into one basic-block expression DAG:
a per-block value map gives later reads of an assigned variable the
defining node directly (so ``t = a+b; u = t*2`` builds one DAG without a
round-trip through memory), and hash-consing in :class:`BlockDAG` yields
common-subexpression elimination for free.  Constant subexpressions fold
during construction, which is also what resolves array indices after
loop unrolling.

Control flow ends the current block: assigned variables are stored (they
travel between blocks through data memory, the paper's model) and
``if``/``while``/``for`` create successor blocks.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import IRError, SemanticError
from repro.frontend import ast
from repro.ir.arith import apply_operation
from repro.ir.cfg import BasicBlock, Branch, Function, Jump, Return
from repro.ir.dag import BlockDAG
from repro.ir.ops import Opcode

_BINARY_OPCODES: Dict[str, Opcode] = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.MOD,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SHL,
    ">>": Opcode.SHR,
    "==": Opcode.EQ,
    "!=": Opcode.NE,
    "<": Opcode.LT,
    "<=": Opcode.LE,
    ">": Opcode.GT,
    ">=": Opcode.GE,
    "min": Opcode.MIN,
    "max": Opcode.MAX,
}

_UNARY_OPCODES: Dict[str, Opcode] = {
    "-": Opcode.NEG,
    "~": Opcode.NOT,
    "abs": Opcode.ABS,
}


def element_symbol(ident: str, index: int) -> str:
    """The scalar data-memory name of a constant-indexed array element."""
    if index < 0:
        raise SemanticError(f"negative array index {ident}[{index}]")
    return f"{ident}[{index}]"


class _Lowerer:
    def __init__(self, name: str):
        self.function = Function(name, entry="bb0")
        self._counter = 0
        self.block: BasicBlock = self._new_block()
        #: variables assigned in the current block -> defining node id
        self.defs: Dict[str, int] = {}

    # -- block management ---------------------------------------------------

    def _new_block(self) -> BasicBlock:
        name = f"bb{self._counter}"
        self._counter += 1
        return self.function.new_block(name)

    def _finish_block(self, terminator) -> None:
        for symbol, node_id in self.defs.items():
            self.block.dag.store(symbol, node_id)
        self.block.set_terminator(terminator)
        self.defs = {}

    def _start(self, block: BasicBlock) -> None:
        self.block = block

    # -- expressions ----------------------------------------------------------

    def lower_expr(self, expr: ast.Expr) -> int:
        """Lower one expression; returns its DAG node id."""
        dag = self.block.dag
        if isinstance(expr, ast.Num):
            return dag.const(expr.value)
        if isinstance(expr, ast.Name):
            if expr.ident in self.defs:
                return self.defs[expr.ident]
            return dag.var(expr.ident)
        if isinstance(expr, ast.Index):
            return self._lower_read(expr)
        if isinstance(expr, ast.Unary):
            if expr.op == "!":
                operand = self.lower_expr(expr.operand)
                return self._operation(Opcode.EQ, (operand, dag.const(0)))
            opcode = _UNARY_OPCODES.get(expr.op)
            if opcode is None:
                raise SemanticError(f"unknown unary operator {expr.op!r}")
            operand = self.lower_expr(expr.operand)
            return self._operation(opcode, (operand,))
        if isinstance(expr, ast.Binary):
            if expr.op in ("&&", "||"):
                return self._lower_logical(expr)
            opcode = _BINARY_OPCODES.get(expr.op)
            if opcode is None:
                raise SemanticError(f"unknown binary operator {expr.op!r}")
            left = self.lower_expr(expr.left)
            right = self.lower_expr(expr.right)
            return self._operation(opcode, (left, right))
        raise SemanticError(f"cannot lower expression {expr!r}")

    def _lower_logical(self, expr: ast.Binary) -> int:
        """Logical && / ||: operands normalised to 0/1, then combined.

        Minic expressions are side-effect free, so evaluating both
        operands is semantically equivalent to short-circuiting.
        """
        dag = self.block.dag
        zero = dag.const(0)
        left = self._operation(
            Opcode.NE, (self.lower_expr(expr.left), zero)
        )
        right = self._operation(
            Opcode.NE, (self.lower_expr(expr.right), zero)
        )
        combiner = Opcode.AND if expr.op == "&&" else Opcode.OR
        return self._operation(combiner, (left, right))

    def _operation(self, opcode: Opcode, operands: Tuple[int, ...]) -> int:
        """Build an operation node, folding constant subexpressions."""
        dag = self.block.dag
        nodes = [dag.node(o) for o in operands]
        if all(n.opcode is Opcode.CONST for n in nodes):
            try:
                value = apply_operation(opcode, *(n.value for n in nodes))
            except IRError:
                pass  # e.g. division by zero: leave it for runtime
            else:
                return dag.const(value)
        return dag.operation(opcode, operands)

    def _lower_read(self, expr: ast.Index) -> int:
        symbol = self._element(expr)
        if symbol in self.defs:
            return self.defs[symbol]
        return self.block.dag.var(symbol)

    def _element(self, expr: ast.Index) -> str:
        index_node = self.block.dag.node(self.lower_expr(expr.index))
        if index_node.opcode is not Opcode.CONST:
            raise SemanticError(
                f"array index of {expr.ident!r} is not a compile-time "
                f"constant; unroll the enclosing loop first"
            )
        return element_symbol(expr.ident, index_node.value)

    # -- statements ---------------------------------------------------------

    def lower_statements(self, statements) -> None:
        """Lower a statement sequence in order."""
        for statement in statements:
            self.lower_statement(statement)

    def lower_statement(self, statement: ast.Stmt) -> None:
        """Lower one statement (may split the current block)."""
        if isinstance(statement, ast.Assign):
            value = self.lower_expr(statement.expr)
            if isinstance(statement.target, ast.Name):
                self.defs[statement.target.ident] = value
            else:
                self.defs[self._element(statement.target)] = value
            return
        if isinstance(statement, ast.If):
            self._lower_if(statement)
            return
        if isinstance(statement, ast.While):
            self._lower_while(statement)
            return
        if isinstance(statement, ast.For):
            self._lower_while(
                ast.While(statement.cond, statement.body + (statement.step,)),
                init=statement.init,
            )
            return
        raise SemanticError(f"cannot lower statement {statement!r}")

    def _lower_if(self, statement: ast.If) -> None:
        condition = self.lower_expr(statement.cond)
        then_block = self._new_block()
        join_block = self._new_block()
        if statement.orelse:
            else_block = self._new_block()
            self._finish_block(
                Branch(condition, then_block.name, else_block.name)
            )
        else:
            self._finish_block(
                Branch(condition, then_block.name, join_block.name)
            )
        self._start(then_block)
        self.lower_statements(statement.then)
        self._finish_block(Jump(join_block.name))
        if statement.orelse:
            self._start(else_block)
            self.lower_statements(statement.orelse)
            self._finish_block(Jump(join_block.name))
        self._start(join_block)

    def _lower_while(
        self, statement: ast.While, init: Optional[ast.Assign] = None
    ) -> None:
        if init is not None:
            self.lower_statement(init)
        header = self._new_block()
        self._finish_block(Jump(header.name))
        self._start(header)
        condition = self.lower_expr(statement.cond)
        body = self._new_block()
        exit_block = self._new_block()
        self._finish_block(Branch(condition, body.name, exit_block.name))
        self._start(body)
        self.lower_statements(statement.body)
        self._finish_block(Jump(header.name))
        self._start(exit_block)


def lower_program(program: ast.Program, name: str = "main") -> Function:
    """Lower a parsed program to an IR function."""
    lowerer = _Lowerer(name)
    lowerer.lower_statements(program.statements)
    lowerer._finish_block(Return())
    lowerer.function.validate()
    return lowerer.function


def compile_source(
    source: str, name: str = "main", optimize: bool = True
) -> Function:
    """Parse, (optionally) optimize, and lower minic source.

    With ``optimize`` the machine-independent pipeline runs first:
    constant-trip ``for`` loops are fully unrolled at the AST level —
    which is what makes array indices constant — and the DAG-level passes
    (folding, algebraic simplification, CSE, DCE) run on the result.
    """
    from repro.frontend.parser import parse_program
    from repro.opt.pipeline import optimize_function
    from repro.opt.unroll import unroll_constant_loops
    from repro.telemetry.session import current as _telemetry

    tm = _telemetry()
    with tm.span("frontend", name, category="frontend"):
        with tm.span("frontend.parse", category="frontend"):
            tree = parse_program(source)
        if optimize:
            with tm.span("frontend.unroll", category="frontend"):
                tree = unroll_constant_loops(tree)
        with tm.span("frontend.lower", category="frontend"):
            function = lower_program(tree, name)
        if optimize:
            optimize_function(function)
    return function
