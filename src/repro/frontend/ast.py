"""Abstract syntax tree of the minic language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


@dataclass(frozen=True)
class Num:
    """Integer literal."""

    value: int


@dataclass(frozen=True)
class Name:
    """Scalar variable reference."""

    ident: str


@dataclass(frozen=True)
class Index:
    """Array element reference ``ident[expr]``."""

    ident: str
    index: "Expr"


@dataclass(frozen=True)
class Unary:
    """Unary operation: ``-``, ``~``, ``!``, or ``abs``."""

    op: str
    operand: "Expr"


@dataclass(frozen=True)
class Binary:
    """Binary operation (arithmetic, logic, shift, comparison, min/max)."""

    op: str
    left: "Expr"
    right: "Expr"


Expr = Union[Num, Name, Index, Unary, Binary]
Target = Union[Name, Index]


@dataclass(frozen=True)
class Assign:
    """``target = expr;``"""

    target: Target
    expr: Expr


@dataclass(frozen=True)
class If:
    """``if (cond) { then } else { orelse }``"""

    cond: Expr
    then: Tuple["Stmt", ...]
    orelse: Tuple["Stmt", ...] = ()


@dataclass(frozen=True)
class While:
    """``while (cond) { body }``"""

    cond: Expr
    body: Tuple["Stmt", ...]


@dataclass(frozen=True)
class For:
    """``for (init; cond; step) { body }`` — init/step are assignments.

    ``unroll`` carries a ``#pragma unroll N`` request attached to the
    loop (``None`` = no pragma; the optimizer decides on its own).
    """

    init: Assign
    cond: Expr
    step: Assign
    body: Tuple["Stmt", ...]
    unroll: Optional[int] = None


Stmt = Union[Assign, If, While, For]


@dataclass(frozen=True)
class Program:
    """A minic program: a statement sequence."""

    statements: Tuple[Stmt, ...]


def substitute(expr: Expr, ident: str, replacement: Expr) -> Expr:
    """Replace every ``Name(ident)`` in ``expr`` with ``replacement``."""
    if isinstance(expr, Name):
        return replacement if expr.ident == ident else expr
    if isinstance(expr, Num):
        return expr
    if isinstance(expr, Index):
        return Index(expr.ident, substitute(expr.index, ident, replacement))
    if isinstance(expr, Unary):
        return Unary(expr.op, substitute(expr.operand, ident, replacement))
    if isinstance(expr, Binary):
        return Binary(
            expr.op,
            substitute(expr.left, ident, replacement),
            substitute(expr.right, ident, replacement),
        )
    raise TypeError(f"not an expression: {expr!r}")
