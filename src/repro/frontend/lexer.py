"""Tokenizer for the minic language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import LexError

NUMBER = "NUMBER"
PRAGMA = "PRAGMA"
IDENT = "IDENT"
OP = "OP"
PUNCT = "PUNCT"
KEYWORD = "KEYWORD"
EOF = "EOF"

KEYWORDS = frozenset({"if", "else", "while", "for", "min", "max", "abs"})

#: Multi-character operators, longest first so the scanner is greedy.
_OPERATORS = [
    "&&",
    "||",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
    "!",
    "=",
]

_PUNCTUATION = set("(){}[];,")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""
    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def tokenize_source(source: str) -> List[Token]:
    """Tokenize minic source.

    ``#`` and ``//`` start line comments; a comment of the form
    ``#pragma <text>`` is not discarded but emitted as a PRAGMA token
    (e.g. ``#pragma unroll 2`` ahead of a ``for`` loop).
    """
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    line, column, index = 1, 1, 0
    length = len(source)
    while index < length:
        char = source[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "#" or source.startswith("//", index):
            start = index
            while index < length and source[index] != "\n":
                index += 1
            comment = source[start:index].lstrip("#/ ").strip()
            if comment.startswith("pragma "):
                yield Token(PRAGMA, comment[len("pragma "):].strip(), line, column)
            continue
        if char.isdigit():
            start = index
            while index < length and source[index].isdigit():
                index += 1
            yield Token(NUMBER, source[start:index], line, column)
            column += index - start
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (
                source[index].isalnum() or source[index] == "_"
            ):
                index += 1
            text = source[start:index]
            kind = KEYWORD if text in KEYWORDS else IDENT
            yield Token(kind, text, line, column)
            column += index - start
            continue
        matched = False
        for operator in _OPERATORS:
            if source.startswith(operator, index):
                yield Token(OP, operator, line, column)
                index += len(operator)
                column += len(operator)
                matched = True
                break
        if matched:
            continue
        if char in _PUNCTUATION:
            yield Token(PUNCT, char, line, column)
            index += 1
            column += 1
            continue
        raise LexError(f"unexpected character {char!r}", line, column)
    yield Token(EOF, "", line, column)
