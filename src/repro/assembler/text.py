"""Textual assembly: a strict, round-trippable program format.

Example::

    .machine arch1_r4
    .symbol a 0
    .symbol out 4
    .word 5 2
    entry:
      U2: MUL RF2.R1, RF2.R0 -> RF2.R0 | B1: DM[0] -> RF1.R1
      BNZ RF1.R0, entry
      HALT

Slots within an instruction are separated by ``|``; the slot's leading
name (before ``:``) identifies the resource — a functional unit for
operations, a bus for transfers — and bare mnemonics (JMP/BNZ/BEZ/HALT/
NOP) form the control slot.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import AssemblerError
from repro.isdl.model import Machine
from repro.asmgen.instruction import (
    ControlKind,
    ControlSlot,
    Instruction,
    Location,
    MemRef,
    OpSlot,
    Program,
    RegRef,
    TransferSlot,
)

_REG_RE = re.compile(r"^(\w+)\.R(\d+)$")
_MEM_RE = re.compile(r"^(\w+)\[(\d+)\]$")


def program_to_text(program: Program) -> str:
    """Serialise a program in the parseable text format."""
    lines: List[str] = [f".machine {program.machine_name}"]
    for name, address in sorted(program.symbols.items(), key=lambda kv: (kv[1], kv[0])):
        lines.append(f".symbol {name} {address}")
    for address, value in sorted(program.data.items()):
        lines.append(f".word {address} {value}")
    by_address: Dict[int, List[str]] = {}
    for label, address in program.labels.items():
        by_address.setdefault(address, []).append(label)
    for index, instruction in enumerate(program.instructions):
        for label in sorted(by_address.get(index, [])):
            lines.append(f"{label}:")
        lines.append(f"  {instruction}")
    for label in sorted(by_address.get(len(program.instructions), [])):
        lines.append(f"{label}:")
    return "\n".join(lines) + "\n"


def _parse_location(text: str) -> Location:
    text = text.strip()
    match = _REG_RE.match(text)
    if match:
        return RegRef(match.group(1), int(match.group(2)))
    match = _MEM_RE.match(text)
    if match:
        return MemRef(match.group(1), int(match.group(2)))
    raise AssemblerError(f"cannot parse location {text!r}")


def _parse_slot(
    text: str, machine: Machine
) -> Tuple[Optional[OpSlot], Optional[TransferSlot], Optional[ControlSlot]]:
    text = text.strip()
    if text == "HALT":
        return None, None, ControlSlot(ControlKind.HALT)
    if text.startswith("JMP "):
        return None, None, ControlSlot(ControlKind.JMP, target=text[4:].strip())
    for kind in (ControlKind.BNZ, ControlKind.BEZ):
        prefix = kind.value + " "
        if text.startswith(prefix):
            rest = text[len(prefix):]
            if "," not in rest:
                raise AssemblerError(f"malformed branch {text!r}")
            condition_text, target = rest.split(",", 1)
            condition = _parse_location(condition_text)
            if not isinstance(condition, RegRef):
                raise AssemblerError(
                    f"branch condition must be a register: {text!r}"
                )
            return None, None, ControlSlot(
                kind, target=target.strip(), condition=condition
            )
    if ":" not in text:
        raise AssemblerError(f"cannot parse slot {text!r}")
    resource, body = text.split(":", 1)
    resource = resource.strip()
    body = body.strip()
    if machine.has_bus(resource):
        if "->" not in body:
            raise AssemblerError(f"malformed transfer {text!r}")
        source_text, destination_text = body.split("->", 1)
        return (
            None,
            TransferSlot(
                bus=resource,
                source=_parse_location(source_text),
                destination=_parse_location(destination_text),
            ),
            None,
        )
    if machine.has_unit(resource):
        if "->" not in body:
            raise AssemblerError(f"malformed operation {text!r}")
        left, destination_text = body.split("->", 1)
        parts = left.strip().split(None, 1)
        op_name = parts[0]
        sources: List[RegRef] = []
        if len(parts) > 1:
            for chunk in parts[1].split(","):
                location = _parse_location(chunk)
                if not isinstance(location, RegRef):
                    raise AssemblerError(
                        f"operands must be registers: {text!r}"
                    )
                sources.append(location)
        destination = _parse_location(destination_text)
        if not isinstance(destination, RegRef):
            raise AssemblerError(f"op destination must be a register: {text!r}")
        return (
            OpSlot(
                unit=resource,
                op_name=op_name,
                destination=destination,
                sources=tuple(sources),
            ),
            None,
            None,
        )
    raise AssemblerError(f"unknown resource {resource!r} in {text!r}")


def parse_assembly(source: str, machine: Machine) -> Program:
    """Parse assembly text into a :class:`Program` for ``machine``.

    ``;`` starts a comment.  Raises :class:`AssemblerError` on any
    malformed line or a machine-name mismatch.
    """
    program = Program(machine_name=machine.name)
    declared_machine: Optional[str] = None
    for raw_line in source.splitlines():
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".machine"):
            declared_machine = line.split()[1]
            if declared_machine != machine.name:
                raise AssemblerError(
                    f"assembly targets {declared_machine!r}, "
                    f"machine is {machine.name!r}"
                )
            program.machine_name = declared_machine
            continue
        if line.startswith(".symbol"):
            _, name, address = line.split()
            program.symbols[name] = int(address)
            continue
        if line.startswith(".word"):
            _, address, value = line.split()
            program.data[int(address)] = int(value)
            continue
        if line.endswith(":") and "|" not in line:
            label = line[:-1].strip()
            if label in program.labels:
                raise AssemblerError(f"duplicate label {label!r}")
            program.labels[label] = len(program.instructions)
            continue
        if line == "NOP":
            program.instructions.append(Instruction())
            continue
        ops: List[OpSlot] = []
        transfers: List[TransferSlot] = []
        control: Optional[ControlSlot] = None
        for slot_text in line.split("|"):
            op_slot, transfer_slot, control_slot = _parse_slot(
                slot_text, machine
            )
            if op_slot is not None:
                ops.append(op_slot)
            if transfer_slot is not None:
                transfers.append(transfer_slot)
            if control_slot is not None:
                if control is not None:
                    raise AssemblerError(
                        f"two control slots in one instruction: {line!r}"
                    )
                control = control_slot
        program.instructions.append(
            Instruction(
                ops=tuple(ops), transfers=tuple(transfers), control=control
            )
        )
    for instruction in program.instructions:
        control = instruction.control
        if control is not None and control.target is not None:
            if control.target not in program.labels:
                raise AssemblerError(
                    f"undefined label {control.target!r}"
                )
    return program
