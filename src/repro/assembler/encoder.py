"""Binary instruction encoding derived from the machine description.

Field widths are computed from the machine: one slot per functional unit
(valid bit, op index, destination register, source registers up to the
unit's widest arity), one slot per bus (valid bit, source and destination
locations), and one control slot.  A *location* encodes a kind bit
(register/memory), a storage index (over the machine's declaration-
ordered storages), and an element index wide enough for the largest
register file or memory.

``encode_program`` resolves labels to instruction indices; the decoder
reconstructs labels as ``L<index>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import AssemblerError
from repro.isdl.model import Machine
from repro.telemetry.session import current as _telemetry
from repro.asmgen.instruction import (
    ControlKind,
    ControlSlot,
    Instruction,
    Location,
    MemRef,
    OpSlot,
    Program,
    RegRef,
    TransferSlot,
)

_CONTROL_CODES = {
    None: 0,
    ControlKind.JMP: 1,
    ControlKind.BNZ: 2,
    ControlKind.BEZ: 3,
    ControlKind.HALT: 4,
}
_CONTROL_BY_CODE = {v: k for k, v in _CONTROL_CODES.items()}


def _bits_for(count: int) -> int:
    """Bits needed to represent values in [0, count)."""
    if count <= 1:
        return 1
    return (count - 1).bit_length()


class _Cursor:
    """Sequential bit writer/reader over a single integer word."""

    def __init__(self, value: int = 0):
        self.value = value
        self.position = 0

    def write(self, width: int, data: int) -> None:
        """Append ``data`` as a ``width``-bit field."""
        if data < 0 or data >= (1 << width):
            raise AssemblerError(
                f"field value {data} does not fit in {width} bits"
            )
        self.value |= data << self.position
        self.position += width

    def read(self, width: int) -> int:
        """Consume and return the next ``width``-bit field."""
        data = (self.value >> self.position) & ((1 << width) - 1)
        self.position += width
        return data


@dataclass
class EncodingLayout:
    """Derived field layout of one machine's instruction word."""

    machine: Machine
    target_bits: int = 16

    def __post_init__(self) -> None:
        machine = self.machine
        self.storages: List[str] = machine.storage_names()
        self.storage_bits = _bits_for(len(self.storages))
        largest = max(
            [rf.size for rf in machine.register_files]
            + [m.size for m in machine.memories]
        )
        self.index_bits = _bits_for(largest)
        self.location_bits = 1 + self.storage_bits + self.index_bits
        self.unit_ops: Dict[str, List[str]] = {
            unit.name: [op.name for op in unit.operations]
            for unit in machine.units
        }
        self.unit_arity: Dict[str, int] = {
            unit.name: max((op.arity for op in unit.operations), default=0)
            for unit in machine.units
        }
        self.register_bits: Dict[str, int] = {
            unit.name: _bits_for(machine.rf_of_unit(unit.name).size)
            for unit in machine.units
        }
        self.word_bits = self._word_bits()

    def _unit_slot_bits(self, unit: str) -> int:
        return (
            1
            + _bits_for(len(self.unit_ops[unit]))
            + self.register_bits[unit] * (1 + self.unit_arity[unit])
        )

    def _bus_slot_bits(self) -> int:
        return 1 + 2 * self.location_bits

    def _control_slot_bits(self) -> int:
        return 3 + self.location_bits + self.target_bits

    def _word_bits(self) -> int:
        total = sum(
            self._unit_slot_bits(u.name) for u in self.machine.units
        )
        total += self._bus_slot_bits() * len(self.machine.buses)
        total += self._control_slot_bits()
        return total

    @property
    def word_bytes(self) -> int:
        """Bytes needed to store one instruction word."""
        return (self.word_bits + 7) // 8

    # -- location coding -------------------------------------------------

    def _encode_location(self, cursor: _Cursor, location: Optional[Location]) -> None:
        if location is None:
            cursor.write(self.location_bits, 0)
            return
        if isinstance(location, RegRef):
            kind, storage, index = 0, location.register_file, location.index
        else:
            kind, storage, index = 1, location.memory, location.address
        try:
            storage_code = self.storages.index(storage)
        except ValueError:
            raise AssemblerError(f"unknown storage {storage!r}") from None
        cursor.write(1, kind)
        cursor.write(self.storage_bits, storage_code)
        cursor.write(self.index_bits, index)

    def _decode_location(self, cursor: _Cursor) -> Location:
        kind = cursor.read(1)
        storage = self.storages[cursor.read(self.storage_bits)]
        index = cursor.read(self.index_bits)
        if kind == 0:
            return RegRef(storage, index)
        return MemRef(storage, index)

    # -- instruction coding ------------------------------------------------

    def encode_instruction(
        self, instruction: Instruction, labels: Dict[str, int]
    ) -> int:
        """Pack one instruction into an integer word."""
        cursor = _Cursor()
        ops_by_unit = {op.unit: op for op in instruction.ops}
        for unit in self.machine.units:
            op_slot = ops_by_unit.get(unit.name)
            op_bits = _bits_for(len(self.unit_ops[unit.name]))
            reg_bits = self.register_bits[unit.name]
            arity = self.unit_arity[unit.name]
            if op_slot is None:
                cursor.write(1 + op_bits + reg_bits * (1 + arity), 0)
                continue
            cursor.write(1, 1)
            try:
                op_code = self.unit_ops[unit.name].index(op_slot.op_name)
            except ValueError:
                raise AssemblerError(
                    f"unit {unit.name} has no op {op_slot.op_name!r}"
                ) from None
            cursor.write(op_bits, op_code)
            cursor.write(reg_bits, op_slot.destination.index)
            for position in range(arity):
                if position < len(op_slot.sources):
                    cursor.write(reg_bits, op_slot.sources[position].index)
                else:
                    cursor.write(reg_bits, 0)
        transfers_by_bus = {t.bus: t for t in instruction.transfers}
        for bus in self.machine.buses:
            transfer = transfers_by_bus.get(bus.name)
            if transfer is None:
                cursor.write(self._bus_slot_bits(), 0)
                continue
            cursor.write(1, 1)
            self._encode_location(cursor, transfer.source)
            self._encode_location(cursor, transfer.destination)
        control = instruction.control
        cursor.write(3, _CONTROL_CODES[control.kind if control else None])
        self._encode_location(cursor, control.condition if control else None)
        target = 0
        if control is not None and control.target is not None:
            if control.target not in labels:
                raise AssemblerError(f"undefined label {control.target!r}")
            target = labels[control.target]
        cursor.write(self.target_bits, target)
        return cursor.value

    def decode_instruction(self, word: int) -> Tuple[Instruction, Optional[int]]:
        """Decode one word; returns (instruction, raw branch target)."""
        cursor = _Cursor(word)
        ops: List[OpSlot] = []
        for unit in self.machine.units:
            op_bits = _bits_for(len(self.unit_ops[unit.name]))
            reg_bits = self.register_bits[unit.name]
            arity = self.unit_arity[unit.name]
            used = cursor.read(1)
            op_code = cursor.read(op_bits)
            destination = cursor.read(reg_bits)
            sources = [cursor.read(reg_bits) for _ in range(arity)]
            if not used:
                continue
            op_name = self.unit_ops[unit.name][op_code]
            machine_op = self.machine.unit(unit.name).op_named(op_name)
            rf = unit.register_file
            ops.append(
                OpSlot(
                    unit=unit.name,
                    op_name=op_name,
                    destination=RegRef(rf, destination),
                    sources=tuple(
                        RegRef(rf, s) for s in sources[: machine_op.arity]
                    ),
                )
            )
        transfers: List[TransferSlot] = []
        for bus in self.machine.buses:
            used = cursor.read(1)
            source = self._decode_location(cursor)
            destination = self._decode_location(cursor)
            if used:
                transfers.append(
                    TransferSlot(bus.name, source, destination)
                )
        control_code = cursor.read(3)
        condition = self._decode_location(cursor)
        target = cursor.read(self.target_bits)
        kind = _CONTROL_BY_CODE.get(control_code)
        control: Optional[ControlSlot] = None
        raw_target: Optional[int] = None
        if kind is not None:
            if kind is ControlKind.HALT:
                control = ControlSlot(ControlKind.HALT)
            elif kind is ControlKind.JMP:
                control = ControlSlot(ControlKind.JMP, target=f"L{target}")
                raw_target = target
            else:
                if not isinstance(condition, RegRef):
                    raise AssemblerError("branch condition decoded as memory")
                control = ControlSlot(
                    kind, target=f"L{target}", condition=condition
                )
                raw_target = target
        return Instruction(tuple(ops), tuple(transfers), control), raw_target


@dataclass
class BinaryImage:
    """An encoded program: instruction words plus the data segment."""

    machine_name: str
    word_bits: int
    words: List[int]
    data: Dict[int, int]
    symbols: Dict[str, int]

    def to_bytes(self) -> bytes:
        """The code segment as little-endian bytes."""
        word_bytes = (self.word_bits + 7) // 8
        return b"".join(
            w.to_bytes(word_bytes, "little") for w in self.words
        )

    @property
    def code_size_bytes(self) -> int:
        """Size of the encoded code segment in bytes."""
        return len(self.to_bytes())


def encode_program(program: Program, machine: Machine) -> BinaryImage:
    """Assemble a program into its binary image."""
    if program.machine_name != machine.name:
        raise AssemblerError(
            f"program targets {program.machine_name!r}, "
            f"machine is {machine.name!r}"
        )
    tm = _telemetry()
    with tm.span("assembler.encode", category="assembler"):
        layout = EncodingLayout(machine)
        words = [
            layout.encode_instruction(i, program.labels)
            for i in program.instructions
        ]
        tm.count("assembler.words", len(words))
        tm.count("assembler.word_bits", layout.word_bits)
    return BinaryImage(
        machine_name=machine.name,
        word_bits=layout.word_bits,
        words=words,
        data=dict(program.data),
        symbols=dict(program.symbols),
    )


def decode_program(image: BinaryImage, machine: Machine) -> Program:
    """Disassemble a binary image back into a program.

    Branch targets become labels ``L<index>`` at the referenced
    instruction indices.
    """
    layout = EncodingLayout(machine)
    program = Program(machine_name=machine.name)
    program.data = dict(image.data)
    program.symbols = dict(image.symbols)
    targets: List[int] = []
    for word in image.words:
        instruction, raw_target = layout.decode_instruction(word)
        program.instructions.append(instruction)
        if raw_target is not None:
            targets.append(raw_target)
    for target in targets:
        program.labels[f"L{target}"] = target
    return program
