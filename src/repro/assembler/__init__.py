"""Assembler and disassembler (the Fig. 1 framework's assembler).

The paper's ISDL tooling generates an assembler that turns compiler
output into a binary for the instruction-level simulator.  This package
provides both directions:

- :mod:`repro.assembler.text` — a parseable assembly text format
  (``program_to_text`` / ``parse_assembly``);
- :mod:`repro.assembler.encoder` — machine-derived binary instruction
  encoding (``encode_program`` / ``decode_program``), with field widths
  computed from the machine description.
"""

from repro.assembler.text import program_to_text, parse_assembly
from repro.assembler.encoder import (
    EncodingLayout,
    encode_program,
    decode_program,
    BinaryImage,
)
from repro.assembler.objfile import save_object, load_object

__all__ = [
    "program_to_text",
    "parse_assembly",
    "EncodingLayout",
    "encode_program",
    "decode_program",
    "BinaryImage",
    "save_object",
    "load_object",
]
