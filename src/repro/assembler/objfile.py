"""A self-describing object-file format for compiled programs.

The Fig. 1 framework feeds the assembler's output "binary file" to the
instruction-level simulator.  :func:`save_object` serialises a
:class:`~repro.assembler.encoder.BinaryImage` (plus the symbol table and
initial data the simulator needs) into a single byte string /
file; :func:`load_object` restores it.  The format is deliberately
simple and fully specified here:

======  =====================================================
offset  contents
======  =====================================================
0       magic ``b"AVIV"``
4       format version (u16 LE)
6       machine-name length (u16 LE), then the name (UTF-8)
..      word_bits (u16 LE), instruction count (u32 LE)
..      code: ceil(word_bits/8) bytes per instruction, LE
..      data count (u32 LE), then (address u32, value i32) pairs
..      symbol count (u32 LE), then (name-len u16, name, address u32)
======  =====================================================

All integers little-endian; values are two's-complement 32-bit.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.errors import AssemblerError
from repro.assembler.encoder import BinaryImage

MAGIC = b"AVIV"
VERSION = 1


def save_object(image: BinaryImage) -> bytes:
    """Serialise ``image`` to object-file bytes."""
    parts = [MAGIC, struct.pack("<H", VERSION)]
    name = image.machine_name.encode("utf-8")
    parts.append(struct.pack("<H", len(name)))
    parts.append(name)
    parts.append(struct.pack("<H", image.word_bits))
    parts.append(struct.pack("<I", len(image.words)))
    word_bytes = (image.word_bits + 7) // 8
    for word in image.words:
        parts.append(word.to_bytes(word_bytes, "little"))
    parts.append(struct.pack("<I", len(image.data)))
    for address in sorted(image.data):
        parts.append(
            struct.pack("<Ii", address, image.data[address])
        )
    parts.append(struct.pack("<I", len(image.symbols)))
    for symbol in sorted(image.symbols):
        encoded = symbol.encode("utf-8")
        parts.append(struct.pack("<H", len(encoded)))
        parts.append(encoded)
        parts.append(struct.pack("<I", image.symbols[symbol]))
    return b"".join(parts)


class _Reader:
    def __init__(self, blob: bytes):
        self._blob = blob
        self._offset = 0

    def take(self, count: int) -> bytes:
        """Consume ``count`` raw bytes."""
        if self._offset + count > len(self._blob):
            raise AssemblerError("truncated object file")
        chunk = self._blob[self._offset : self._offset + count]
        self._offset += count
        return chunk

    def unpack(self, fmt: str):
        """Consume and decode one struct-format field group."""
        size = struct.calcsize(fmt)
        return struct.unpack(fmt, self.take(size))

    @property
    def exhausted(self) -> bool:
        """True once every input byte has been consumed."""
        return self._offset == len(self._blob)


def load_object(blob: bytes) -> BinaryImage:
    """Parse object-file bytes back into a :class:`BinaryImage`.

    Raises :class:`AssemblerError` on bad magic, unsupported version,
    or truncation.
    """
    reader = _Reader(blob)
    if reader.take(4) != MAGIC:
        raise AssemblerError("not an AVIV object file (bad magic)")
    (version,) = reader.unpack("<H")
    if version != VERSION:
        raise AssemblerError(
            f"unsupported object format version {version} "
            f"(this tool reads {VERSION})"
        )
    (name_length,) = reader.unpack("<H")
    machine_name = reader.take(name_length).decode("utf-8")
    (word_bits,) = reader.unpack("<H")
    (instruction_count,) = reader.unpack("<I")
    word_bytes = (word_bits + 7) // 8
    words = [
        int.from_bytes(reader.take(word_bytes), "little")
        for _ in range(instruction_count)
    ]
    (data_count,) = reader.unpack("<I")
    data = {}
    for _ in range(data_count):
        address, value = reader.unpack("<Ii")
        data[address] = value
    (symbol_count,) = reader.unpack("<I")
    symbols = {}
    for _ in range(symbol_count):
        (length,) = reader.unpack("<H")
        symbol = reader.take(length).decode("utf-8")
        (address,) = reader.unpack("<I")
        symbols[symbol] = address
    if not reader.exhausted:
        raise AssemblerError("trailing garbage after object file")
    return BinaryImage(
        machine_name=machine_name,
        word_bits=word_bits,
        words=words,
        data=data,
        symbols=symbols,
    )
