"""Independent re-checking of a scheduled block against the paper's
invariants (translation validation).

The checker deliberately shares no code with the covering, scheduling,
register-estimation, or peephole layers it audits: it reads the task
graph and schedule as plain data, recomputes latencies, transfer
legality, constraint matching, and live ranges directly from the machine
model, and reports every discrepancy as a structured
:class:`~repro.verify.violations.Violation`.  Only the ``ir`` opcode
predicates, the ``isdl.model`` machine description, and the Split-Node
DAG's read-side alternative listing are consulted.

Invariants checked (paper sections in ``docs/verification.md``):

1. every DAG operation and store is implemented exactly once, by a
   recorded legal alternative;
2. def-before-use: every dependency completes (issue + latency) before
   its consumer issues — stall NOPs included;
3. every value flow is realized: reads name live producers delivering
   the same value into the same storage, operands sit in the consuming
   unit's register file, transfers ride buses that connect their
   endpoints, and pinned branch conditions survive to block end;
4. each VLIW word uses every unit and bus at most once and matches no
   ISDL "never" constraint;
5. register-bank occupancy stays within capacity and spills/reloads
   pair up;
6. (in :mod:`repro.verify.emission`) the emitted assembly round-trips
   to the same schedule.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.ops import is_leaf

from repro.verify.violations import VerificationReport, ViolationKind


def _op_latency(machine, unit_name: str, op_name: str) -> int:
    """Latency of an op looked up straight from the machine model."""
    if not machine.has_unit(unit_name):
        return 1
    op = machine.unit(unit_name).op_named(op_name)
    return op.latency if op is not None else 1


def _task_latency(machine, task) -> int:
    """Cycles until a task's result is readable (transfers take one)."""
    if task.kind.value == "op":
        return _op_latency(machine, task.unit, task.op_name)
    return 1


def _schedule_map(solution, report: VerificationReport) -> Dict[int, int]:
    """task id -> issue cycle; flags phantom/duplicate/unscheduled."""
    tasks = solution.graph.tasks
    cycle_of: Dict[int, int] = {}
    for cycle, members in enumerate(solution.schedule):
        for task_id in members:
            report.checks += 2
            if task_id in cycle_of:
                report.add(
                    ViolationKind.DUPLICATE_TASK,
                    f"task t{task_id} issued in cycles "
                    f"{cycle_of[task_id]} and {cycle}",
                    task=task_id,
                    cycle=cycle,
                )
                continue
            if task_id not in tasks:
                report.add(
                    ViolationKind.PHANTOM_TASK,
                    f"scheduled task t{task_id} does not exist in the "
                    f"task graph",
                    task=task_id,
                    cycle=cycle,
                )
                continue
            cycle_of[task_id] = cycle
    for task_id in sorted(tasks):
        report.checks += 1
        if task_id not in cycle_of:
            report.add(
                ViolationKind.UNSCHEDULED_TASK,
                f"live task {tasks[task_id].describe()} is missing from "
                f"the schedule",
                task=task_id,
            )
    return cycle_of


def _check_covering(solution, cycle_of, report: VerificationReport) -> None:
    """Invariant 1: exact, legal covering of every operation and store."""
    graph = solution.graph
    dag = graph.dag
    sn = solution.sn
    covered: Dict[int, List[int]] = {}
    for task_id in sorted(cycle_of):
        task = graph.tasks[task_id]
        if task.kind.value != "op":
            continue
        for node_id in task.covers:
            covered.setdefault(node_id, []).append(task_id)
        report.checks += 1
        try:
            alternatives = sn.alternatives(task.value)
        except KeyError:
            alternatives = []
        legal = any(
            alt.unit == task.unit
            and alt.op_name == task.op_name
            and tuple(alt.covers) == tuple(task.covers)
            for alt in alternatives
        )
        machine = graph.machine
        known_op = machine.has_unit(task.unit) and (
            machine.unit(task.unit).op_named(task.op_name) is not None
        )
        if not (legal and known_op):
            report.add(
                ViolationKind.ILLEGAL_ALTERNATIVE,
                f"{task.describe()} is not a recorded alternative of "
                f"n{task.value}",
                task=task_id,
                node=task.value,
            )
    for node_id in dag.operation_nodes():
        report.checks += 1
        implementers = covered.get(node_id, [])
        if not implementers:
            report.add(
                ViolationKind.UNCOVERED_OPERATION,
                f"operation n{node_id} ({dag.node(node_id).describe()}) "
                f"is implemented by no scheduled task",
                node=node_id,
            )
        elif len(implementers) > 1:
            report.add(
                ViolationKind.DOUBLE_COVERED_OPERATION,
                f"operation n{node_id} is implemented by "
                f"{len(implementers)} tasks: "
                + ", ".join(f"t{t}" for t in implementers),
                node=node_id,
            )
    dm = graph.machine.data_memory
    for store_id in dag.stores:
        symbol = dag.node(store_id).symbol
        writers = [
            task_id
            for task_id in sorted(cycle_of)
            if graph.tasks[task_id].store_symbol == symbol
            and graph.tasks[task_id].dest_storage == dm
        ]
        report.checks += 1
        if not writers:
            report.add(
                ViolationKind.UNCOVERED_OPERATION,
                f"store of {symbol!r} (n{store_id}) is written back by "
                f"no scheduled transfer",
                node=store_id,
            )
        elif len(writers) > 1:
            report.add(
                ViolationKind.DOUBLE_COVERED_OPERATION,
                f"store of {symbol!r} (n{store_id}) is written back by "
                f"{len(writers)} transfers",
                node=store_id,
            )


def _check_dependences(solution, cycle_of, report: VerificationReport) -> None:
    """Invariant 2: issue + latency of every dependency <= consumer issue."""
    graph = solution.graph
    machine = graph.machine
    for task_id, cycle in sorted(cycle_of.items()):
        task = graph.tasks[task_id]
        producers = [r.producer for r in task.reads if r.producer is not None]
        producers.extend(task.extra_after)
        for producer_id in producers:
            if producer_id not in cycle_of:
                continue  # missing producers are invariant-3 violations
            report.checks += 1
            available = cycle_of[producer_id] + _task_latency(
                machine, graph.tasks[producer_id]
            )
            if available > cycle:
                report.add(
                    ViolationKind.DEPENDENCE_ORDER,
                    f"{task.describe()} issues at cycle {cycle} but its "
                    f"dependency t{producer_id} completes at {available}",
                    task=task_id,
                    cycle=cycle,
                )


def _check_value_flow(solution, cycle_of, report: VerificationReport) -> None:
    """Invariant 3: reads, operand locations, transfer paths, pinning."""
    graph = solution.graph
    machine = graph.machine
    dm = machine.data_memory
    for task_id in sorted(cycle_of):
        task = graph.tasks[task_id]
        is_op = task.kind.value == "op"
        unit_rf = (
            machine.unit(task.unit).register_file
            if is_op and machine.has_unit(task.unit)
            else None
        )
        for read in task.reads:
            report.checks += 1
            if read.producer is None:
                leaf = (
                    read.value in graph.dag
                    and is_leaf(graph.dag.node(read.value).opcode)
                )
                if read.storage != dm or not leaf:
                    report.add(
                        ViolationKind.VALUE_FLOW,
                        f"{task.describe()} reads n{read.value} from "
                        f"{read.storage} with no producing task",
                        task=task_id,
                        node=read.value,
                    )
            elif read.producer not in graph.tasks:
                report.add(
                    ViolationKind.VALUE_FLOW,
                    f"{task.describe()} reads missing task "
                    f"t{read.producer}",
                    task=task_id,
                    node=read.value,
                )
            else:
                producer = graph.tasks[read.producer]
                if (
                    producer.value != read.value
                    or producer.dest_storage != read.storage
                ):
                    report.add(
                        ViolationKind.VALUE_FLOW,
                        f"{task.describe()} expects n{read.value} in "
                        f"{read.storage} but t{read.producer} delivers "
                        f"n{producer.value} into {producer.dest_storage}",
                        task=task_id,
                        node=read.value,
                    )
            if is_op and unit_rf is not None and read.storage != unit_rf:
                report.checks += 1
                report.add(
                    ViolationKind.OPERAND_LOCATION,
                    f"{task.describe()} reads an operand from "
                    f"{read.storage}; unit {task.unit} reads only from "
                    f"{unit_rf}",
                    task=task_id,
                    node=read.value,
                )
        if not is_op:
            report.checks += 1
            connecting = [
                b.name
                for b in machine.buses_connecting(
                    task.source_storage or "", task.dest_storage
                )
            ]
            source_ok = (
                len(task.reads) == 1
                and task.reads[0].storage == task.source_storage
            )
            if task.bus not in connecting or not source_ok:
                report.add(
                    ViolationKind.ILLEGAL_TRANSFER,
                    f"{task.describe()}: bus {task.bus} does not carry "
                    f"{task.source_storage} -> {task.dest_storage}",
                    task=task_id,
                    node=task.value,
                )
    _check_pin(solution, cycle_of, report)


def _check_pin(solution, cycle_of, report: VerificationReport) -> None:
    """Pinned branch conditions stay register-resident to block end."""
    graph = solution.graph
    read = graph.condition_read
    if read is None:
        return
    report.checks += 1
    machine = graph.machine
    rf_names = {rf.name for rf in machine.register_files}
    if read.producer is None or read.storage not in rf_names:
        report.add(
            ViolationKind.PIN_VIOLATION,
            f"branch condition n{read.value} is not delivered to a "
            f"register file",
            node=read.value,
        )
        return
    if read.producer not in cycle_of:
        report.add(
            ViolationKind.PIN_VIOLATION,
            f"branch condition producer t{read.producer} is not "
            f"scheduled",
            task=read.producer,
            node=read.value,
        )
        return
    available = cycle_of[read.producer] + _task_latency(
        machine, graph.tasks[read.producer]
    )
    if available > len(solution.schedule):
        report.add(
            ViolationKind.DEPENDENCE_ORDER,
            f"branch condition t{read.producer} completes at cycle "
            f"{available}, after the block body ends at "
            f"{len(solution.schedule)}",
            task=read.producer,
            node=read.value,
        )


def _check_words(solution, cycle_of, report: VerificationReport) -> None:
    """Invariant 4: slot exclusivity and ISDL "never" constraints."""
    graph = solution.graph
    machine = graph.machine
    for cycle, members in enumerate(solution.schedule):
        live = [t for t in members if t in graph.tasks]
        used: Dict[str, int] = {}
        for task_id in live:
            report.checks += 1
            resource = graph.tasks[task_id].resource
            used[resource] = used.get(resource, 0) + 1
            if used[resource] == 2:
                report.add(
                    ViolationKind.RESOURCE_CONFLICT,
                    f"resource {resource} carries two slots in one word",
                    task=task_id,
                    cycle=cycle,
                )
        for constraint in machine.constraints:
            report.checks += 1
            if _constraint_matches(graph.tasks, live, constraint):
                report.add(
                    ViolationKind.CONSTRAINT,
                    f"word matches every term of '{constraint}'",
                    cycle=cycle,
                    constraint=str(constraint),
                )


def _constraint_matches(tasks, member_ids, constraint) -> bool:
    """True when every term of an ISDL constraint matches some slot."""
    for term in constraint.terms:
        if not any(
            _term_matches(tasks[t], term.resource, term.op_name)
            for t in member_ids
        ):
            return False
    return True


def _term_matches(task, resource: str, op_name: str) -> bool:
    if task.resource != resource:
        return False
    if op_name == "*":
        return True
    return task.kind.value == "op" and task.op_name == op_name


def _check_banks(solution, cycle_of, report: VerificationReport) -> None:
    """Invariant 5: occupancy within capacity; spills pair with reloads.

    Live ranges are recomputed from scratch with the paper's semantics:
    a delivery occupies its bank strictly after its issue cycle, through
    its last consumer (a dead result: through issue + latency; a pinned
    condition: through the end of the block).
    """
    graph = solution.graph
    machine = graph.machine
    dm = machine.data_memory
    rf_sizes = {rf.name: rf.size for rf in machine.register_files}
    length = len(solution.schedule)
    consumers: Dict[int, List[int]] = {}
    for task_id in sorted(cycle_of):
        for read in graph.tasks[task_id].reads:
            if read.producer is not None:
                consumers.setdefault(read.producer, []).append(task_id)
    occupancy: Dict[str, List[int]] = {
        bank: [0] * length for bank in rf_sizes
    }
    for task_id, def_cycle in sorted(cycle_of.items()):
        task = graph.tasks[task_id]
        bank = task.dest_storage
        if bank not in rf_sizes:
            continue
        uses = [cycle_of[c] for c in consumers.get(task_id, []) if c in cycle_of]
        if uses:
            last_use = max(uses)
        else:
            last_use = def_cycle + _task_latency(machine, task)
        if task_id in graph.pinned:
            last_use = max(last_use, length)
        for cycle in range(def_cycle, min(last_use, length)):
            occupancy[bank][cycle] += 1
    for bank, profile in sorted(occupancy.items()):
        report.checks += 1
        for cycle, count in enumerate(profile):
            if count > rf_sizes[bank]:
                report.add(
                    ViolationKind.BANK_OVERFLOW,
                    f"bank {bank} holds {count} live values after cycle "
                    f"{cycle}; capacity is {rf_sizes[bank]}",
                    cycle=cycle,
                )
                break
    for task_id in sorted(cycle_of):
        task = graph.tasks[task_id]
        if task.is_spill and task.dest_storage == dm:
            report.checks += 1
            if not consumers.get(task_id):
                report.add(
                    ViolationKind.SPILL_MISMATCH,
                    f"{task.describe()} spills a value nothing reloads",
                    task=task_id,
                    node=task.value,
                )
        if task.is_reload and task.reads and task.reads[0].storage == dm:
            report.checks += 1
            producer = task.reads[0].producer
            source = (
                graph.tasks[producer]
                if producer is not None and producer in graph.tasks
                else None
            )
            if source is None or source.dest_storage != dm:
                report.add(
                    ViolationKind.SPILL_MISMATCH,
                    f"{task.describe()} reloads from memory but no spill "
                    f"delivered n{task.value} there",
                    task=task_id,
                    node=task.value,
                )


def verify_solution(
    solution, block_name: str = "block"
) -> VerificationReport:
    """Validate one scheduled block solution against invariants 1-5.

    Args:
        solution: a ``BlockSolution``-shaped object (read as plain
            data; pre- or post-peephole states are both accepted).
        block_name: label used in diagnostics.

    Returns:
        A :class:`VerificationReport`; ``report.ok`` means every
        invariant held.
    """
    report = VerificationReport(block=block_name)
    cycle_of = _schedule_map(solution, report)
    _check_covering(solution, cycle_of, report)
    _check_dependences(solution, cycle_of, report)
    _check_value_flow(solution, cycle_of, report)
    _check_words(solution, cycle_of, report)
    _check_banks(solution, cycle_of, report)
    return report
