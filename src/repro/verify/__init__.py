"""Independent schedule validation (translation validation).

This package certifies compiled blocks against the paper's invariants
without reusing any code from the layers it audits — see
:mod:`repro.verify.checker` for the invariant list and
``docs/verification.md`` for the paper mapping.

Entry points:

- :func:`verify_solution` — invariants 1-5 over one block solution;
- :func:`verify_block` — invariants 1-6 over a solution plus its
  emitted instructions;
- :func:`verify_function` — every block of a compiled function.
"""

from __future__ import annotations

from typing import List, Optional

from repro.verify.checker import verify_solution
from repro.verify.emission import verify_emission
from repro.verify.violations import (
    VerificationReport,
    Violation,
    ViolationKind,
)

__all__ = [
    "VerificationReport",
    "Violation",
    "ViolationKind",
    "verify_block",
    "verify_emission",
    "verify_function",
    "verify_solution",
]


def verify_block(
    solution, instructions=None, block_name: str = "block"
) -> VerificationReport:
    """Validate one block: schedule invariants plus emission round-trip."""
    report = verify_solution(solution, block_name=block_name)
    if instructions is not None:
        verify_emission(solution, instructions, report)
    return report


def verify_function(compiled) -> List[VerificationReport]:
    """Validate every block of a compiled function.

    ``compiled`` is duck-typed: anything with a ``blocks`` mapping of
    name -> object carrying ``solution`` and ``instructions`` works
    (:class:`repro.asmgen.program.CompiledFunction` does).
    """
    return [
        verify_block(block.solution, block.instructions, block_name=name)
        for name, block in compiled.blocks.items()
    ]
