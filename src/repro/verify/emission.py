"""Invariant 6: emitted assembly round-trips to the schedule.

Each emitted VLIW word is re-derived from the scheduled tasks of its
cycle and compared slot by slot: the multiset of (unit, op) slots and of
bus transfers must match, every register reference must fall inside its
bank, and every slot's endpoints must name the storages the task graph
says the value moves between.  A disagreement means the emitter (or the
register allocator feeding it) materialized a different program than the
one the covering engine scheduled.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.verify.violations import VerificationReport, ViolationKind


def _location_storage(location) -> str:
    """Storage name a RegRef/MemRef lives in (duck-typed)."""
    name = getattr(location, "register_file", None)
    if name is not None:
        return name
    return location.memory


def _word_signature_from_tasks(graph, members) -> List[Tuple]:
    """Canonical slot signature of one scheduled cycle."""
    signature: List[Tuple] = []
    for task_id in members:
        task = graph.tasks.get(task_id)
        if task is None:
            continue
        if task.kind.value == "op":
            signature.append(("op", task.unit, task.op_name, task.dest_storage))
        else:
            signature.append(
                ("xfer", task.bus, task.source_storage, task.dest_storage)
            )
    return sorted(signature)


def _word_signature_from_instruction(instruction) -> List[Tuple]:
    """Canonical slot signature of one emitted VLIW word."""
    signature: List[Tuple] = []
    for op in instruction.ops:
        signature.append(
            ("op", op.unit, op.op_name, _location_storage(op.destination))
        )
    for transfer in instruction.transfers:
        signature.append(
            (
                "xfer",
                transfer.bus,
                _location_storage(transfer.source),
                _location_storage(transfer.destination),
            )
        )
    return sorted(signature)


def _check_register_bounds(
    machine, instruction, cycle: int, report: VerificationReport
) -> None:
    """Every register reference must fall inside its declared bank."""
    rf_sizes = {rf.name: rf.size for rf in machine.register_files}
    locations = []
    for op in instruction.ops:
        locations.append(op.destination)
        locations.extend(op.sources)
    for transfer in instruction.transfers:
        locations.extend((transfer.source, transfer.destination))
    for location in locations:
        bank = getattr(location, "register_file", None)
        if bank is None:
            continue
        report.checks += 1
        size = rf_sizes.get(bank)
        if size is None or not (0 <= location.index < size):
            report.add(
                ViolationKind.EMISSION_MISMATCH,
                f"register reference {location} is outside bank "
                f"{bank} (size {size})",
                cycle=cycle,
            )


def verify_emission(
    solution, instructions, report: Optional[VerificationReport] = None
) -> VerificationReport:
    """Check that ``instructions`` realize exactly ``solution.schedule``.

    Appends :data:`~repro.verify.violations.ViolationKind.EMISSION_MISMATCH`
    violations to ``report`` (a fresh report is created when omitted).
    """
    if report is None:
        report = VerificationReport()
    graph = solution.graph
    machine = graph.machine
    report.checks += 1
    if len(instructions) != len(solution.schedule):
        report.add(
            ViolationKind.EMISSION_MISMATCH,
            f"{len(instructions)} instructions emitted for "
            f"{len(solution.schedule)} scheduled cycles",
        )
        return report
    for cycle, (members, instruction) in enumerate(
        zip(solution.schedule, instructions)
    ):
        report.checks += 1
        expected = _word_signature_from_tasks(graph, members)
        actual = _word_signature_from_instruction(instruction)
        if expected != actual:
            report.add(
                ViolationKind.EMISSION_MISMATCH,
                f"word does not round-trip: schedule says {expected}, "
                f"assembly says {actual}",
                cycle=cycle,
            )
        _check_register_bounds(machine, instruction, cycle, report)
    return report
