"""Structured diagnostics produced by the schedule validator.

Each :class:`Violation` names the invariant that broke (a
:class:`ViolationKind`), the block, and — where meaningful — the task,
original-DAG node, cycle, and constraint involved, so a failure can be
traced straight back to the paper section whose guarantee it breaks
(see ``docs/verification.md`` for the mapping).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class ViolationKind(enum.Enum):
    """The paper invariant a violation breaks.

    Grouped by the checker's six invariants:

    1. covering — UNCOVERED_OPERATION, DOUBLE_COVERED_OPERATION,
       ILLEGAL_ALTERNATIVE, UNSCHEDULED_TASK, PHANTOM_TASK,
       DUPLICATE_TASK;
    2. dependence order — DEPENDENCE_ORDER;
    3. value flow — VALUE_FLOW, OPERAND_LOCATION, ILLEGAL_TRANSFER,
       PIN_VIOLATION;
    4. word legality — RESOURCE_CONFLICT, CONSTRAINT;
    5. register banks — BANK_OVERFLOW, SPILL_MISMATCH;
    6. emission — EMISSION_MISMATCH.
    """

    #: A DAG operation (or store) implemented by no scheduled task.
    UNCOVERED_OPERATION = "uncovered-operation"
    #: A DAG operation (or store) implemented more than once.
    DOUBLE_COVERED_OPERATION = "double-covered-operation"
    #: An OP task that is not a recorded Split-Node DAG alternative of
    #: the node it claims to cover, or names an op its unit lacks.
    ILLEGAL_ALTERNATIVE = "illegal-alternative"
    #: A live task missing from the schedule.
    UNSCHEDULED_TASK = "unscheduled-task"
    #: A scheduled task id that no longer exists in the task graph.
    PHANTOM_TASK = "phantom-task"
    #: A task issued in more than one cycle.
    DUPLICATE_TASK = "duplicate-task"
    #: A consumer issued before a dependency's result is available
    #: (issue + latency), i.e. a missing stall NOP or reordered words.
    DEPENDENCE_ORDER = "dependence-order"
    #: A read whose producing task is missing, delivers a different
    #: value, or delivers into a different storage than the read names.
    VALUE_FLOW = "value-flow"
    #: An OP operand read from anywhere but the unit's register file.
    OPERAND_LOCATION = "operand-location"
    #: A transfer whose bus does not connect its endpoints.
    ILLEGAL_TRANSFER = "illegal-transfer"
    #: A branch condition that is not register-resident at block end.
    PIN_VIOLATION = "pin-violation"
    #: A functional unit or bus used twice in one VLIW word.
    RESOURCE_CONFLICT = "resource-conflict"
    #: A VLIW word matching every term of an ISDL "never" constraint.
    CONSTRAINT = "constraint"
    #: Register-bank occupancy above the bank's capacity.
    BANK_OVERFLOW = "bank-overflow"
    #: A spill with no matching consumer, or a reload that does not
    #: read a value delivered to data memory.
    SPILL_MISMATCH = "spill-mismatch"
    #: Emitted assembly that does not round-trip to the schedule.
    EMISSION_MISMATCH = "emission-mismatch"


@dataclass(frozen=True)
class Violation:
    """One broken invariant, localized as precisely as possible."""

    kind: ViolationKind
    message: str
    block: str = "block"
    task: Optional[int] = None
    node: Optional[int] = None
    cycle: Optional[int] = None
    constraint: Optional[str] = None

    def describe(self) -> str:
        """One-line rendering used by the CLI and fuzz findings."""
        where = [self.block]
        if self.cycle is not None:
            where.append(f"cycle {self.cycle}")
        if self.task is not None:
            where.append(f"t{self.task}")
        if self.node is not None:
            where.append(f"n{self.node}")
        if self.constraint is not None:
            where.append(self.constraint)
        return f"[{self.kind.value}] {' '.join(where)}: {self.message}"

    def summary(self) -> Dict[str, object]:
        """JSON-serializable form (``repro verify --json``)."""
        return {
            "kind": self.kind.value,
            "message": self.message,
            "block": self.block,
            "task": self.task,
            "node": self.node,
            "cycle": self.cycle,
            "constraint": self.constraint,
        }


@dataclass
class VerificationReport:
    """Outcome of validating one block."""

    block: str = "block"
    #: number of elementary invariant checks performed (telemetry).
    checks: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every checked invariant holds."""
        return not self.violations

    def kinds(self) -> List[str]:
        """Violation kind values in report order (stable, may repeat)."""
        return [v.kind.value for v in self.violations]

    def add(self, kind: ViolationKind, message: str, **where) -> None:
        """Record a violation localized by the keyword fields."""
        self.violations.append(
            Violation(kind=kind, message=message, block=self.block, **where)
        )

    def describe(self) -> str:
        """Multi-line rendering: verdict plus one line per violation."""
        if self.ok:
            return f"{self.block}: OK ({self.checks} checks)"
        lines = [
            f"{self.block}: {len(self.violations)} violation(s) "
            f"({self.checks} checks)"
        ]
        lines.extend("  " + v.describe() for v in self.violations)
        return "\n".join(lines)

    def summary(self) -> Dict[str, object]:
        """JSON-serializable form (``repro verify --json``)."""
        return {
            "block": self.block,
            "checks": self.checks,
            "ok": self.ok,
            "violations": [v.summary() for v in self.violations],
        }
