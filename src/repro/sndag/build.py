"""Construction of the Split-Node DAG (paper, Sections III-A/III-B).

For the basic-block DAG and target machine, the builder creates:

- one VALUE node per leaf (variables and constants live in data memory);
- one SPLIT node per operation, with one ALTERNATIVE child per
  (functional unit, machine op) that can execute it — including complex
  instruction matches from the pattern matcher;
- one SPLIT node per store, whose implementations are transfers of the
  stored value back to data memory;
- TRANSFER nodes on every path a value might take between storages:
  memory → consuming unit for leaves, producing unit → consuming unit
  for operation results, producing unit → memory for stores.  Paths from
  several split nodes reconverge: a transfer hop moving the same value
  between the same storages over the same bus is created once, and a
  chain arriving at a shared hop from a different predecessor merges
  into the hop's children.

The resulting object carries everything the covering engine needs — the
alternatives per operation, the transfer database, and the pattern
matches — and reports the node counts in the paper's "Split-Node DAG
#Nodes" column.

Transfer materialisation modes
------------------------------

The paper's construction ("subsequently expanded to include
multiple-step data transfers as well") is *eager*: every minimal path
between every reachable (storage, storage) pair a value might cross is
expanded into TRANSFER node chains up front.  Telemetry showed those
nodes dominating the DAG (transfer ≈ 5 × split nodes on Ex2) while the
covering engine itself answers all path questions straight from the
:class:`~repro.isdl.databases.TransferDatabase`.

``mode="lazy"`` therefore skips the up-front expansion: construction
still verifies reachability for exactly the pairs the eager build would
have enumerated (so unmappable machines fail identically), but TRANSFER
nodes are only materialised on demand — :meth:`SplitNodeDAG.
materialize_transfer` is called by the task-graph builder for each
(value, source → destination) movement the chosen assignment actually
needs, and all equivalent-cost minimal paths of a pair fold into the
transfer database's canonical representative chain.  Alternative and
store-split children then link directly to the operand/producer
terminals.  Schedules are bit-identical between modes (the covering
layers never read TRANSFER nodes); the eager mode remains available via
``HeuristicConfig.sndag_mode`` as the differential oracle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import NoTransferPathError, UnmappableOperationError
from repro.ir.dag import BlockDAG
from repro.ir.ops import Opcode, is_leaf, is_operation
from repro.isdl.databases import OperationDatabase, TransferDatabase, TransferPath
from repro.isdl.model import Machine
from repro.sndag.nodes import Alternative, SNKind, SNNode
from repro.sndag.patterns import PatternMatch, find_pattern_matches
from repro.telemetry.session import current as _telemetry
from repro.utils.ids import IdAllocator

#: Transfer-materialisation modes of :func:`build_split_node_dag`.
SNDAG_MODES = ("eager", "lazy")


class SplitNodeDAG:
    """The Split-Node DAG of one basic block on one machine."""

    def __init__(self, dag: BlockDAG, machine: Machine, mode: str = "eager"):
        if mode not in SNDAG_MODES:
            raise ValueError(
                f"unknown Split-Node DAG mode {mode!r}; expected one of "
                f"{SNDAG_MODES}"
            )
        self.dag = dag
        self.machine = machine
        self.mode = mode
        self.op_db = OperationDatabase(machine)
        self.transfer_db = TransferDatabase(machine)
        self.pattern_matches: List[PatternMatch] = []
        self._ids = IdAllocator()
        self.nodes: Dict[int, SNNode] = {}
        #: original op/store id -> SPLIT node id
        self.split_of: Dict[int, int] = {}
        #: original leaf id -> VALUE node id
        self.value_of: Dict[int, int] = {}
        #: original op id -> ALTERNATIVE node ids (complex ones included)
        self.alternatives_of: Dict[int, List[int]] = {}
        #: (moved original id, source, destination, bus) -> TRANSFER id
        self._transfer_index: Dict[Tuple[int, str, str, str], int] = {}
        #: lazy mode: (moved original id, source, destination) demands
        #: already answered, -> last hop's node id
        self._demanded: Dict[Tuple[int, str, str], Optional[int]] = {}
        #: lazy mode: equivalent-cost minimal paths folded into the
        #: canonical representative across all demands so far.
        self.transfer_paths_folded = 0
        #: eager-equivalent transfer-node count (computed on demand).
        self._eager_transfer_count: Optional[int] = None

    # -- construction helpers (used by build_split_node_dag) -------------

    def _new_node(self, **kwargs) -> int:
        node_id = self._ids.allocate()
        self.nodes[node_id] = SNNode(node_id=node_id, **kwargs)
        return node_id

    def _set_children(self, node_id: int, children: List[int]) -> None:
        node = self.nodes[node_id]
        self.nodes[node_id] = SNNode(
            node_id=node.node_id,
            kind=node.kind,
            original_id=node.original_id,
            alternative=node.alternative,
            bus=node.bus,
            source=node.source,
            destination=node.destination,
            children=tuple(children),
        )

    def transfer_chain(
        self, moved_original: int, path: TransferPath, terminal: Optional[int]
    ) -> Optional[int]:
        """Create (or reuse) TRANSFER nodes for ``path``.

        ``terminal`` is the Split-Node-DAG node producing the moved value
        (a VALUE node or a SPLIT node); the first hop points at it.
        Returns the last hop's node id, or ``terminal`` for empty paths.

        Paths reconverge: a hop moving the same value between the same
        storages over the same bus is shared.  A chain arriving at a
        shared hop with a *different* predecessor merges its predecessor
        into the hop's children (the hop can be fed either way) instead
        of silently dropping the new route.
        """
        below = terminal
        for hop in path:
            key = (moved_original, hop.source, hop.destination, hop.bus)
            node_id = self._transfer_index.get(key)
            if node_id is None:
                node_id = self._new_node(
                    kind=SNKind.TRANSFER,
                    original_id=moved_original,
                    bus=hop.bus,
                    source=hop.source,
                    destination=hop.destination,
                    children=(below,) if below is not None else (),
                )
                self._transfer_index[key] = node_id
            else:
                node = self.nodes[node_id]
                if below is not None and below not in node.children:
                    self._set_children(node_id, list(node.children) + [below])
            below = node_id
        return below

    # -- lazy transfer materialisation ------------------------------------

    def terminal_node(self, original_id: int) -> int:
        """The Split-Node-DAG node a transfer chain of this value starts
        from: the VALUE node for leaves, the SPLIT node for operations."""
        node = self.dag.node(original_id)
        if is_leaf(node.opcode):
            return self.value_of[original_id]
        return self.split_of[original_id]

    def materialize_transfer(
        self, value_id: int, source: str, destination: str
    ) -> Optional[int]:
        """Materialise the transfer chain one demanded movement needs.

        Called by the task-graph builder for each (value, source →
        destination) data movement the chosen assignment requires.  In
        eager mode this is a no-op (every path already exists); in lazy
        mode the pair's equivalent-cost minimal paths fold into the
        transfer database's canonical representative, whose hop chain is
        created once and shared across demands.  Returns the last hop's
        node id (``None`` for a no-op or an empty path).
        """
        if self.mode != "lazy" or source == destination:
            return None
        key = (value_id, source, destination)
        if key in self._demanded:
            return self._demanded[key]
        path = self.transfer_db.canonical_path(source, destination)
        folded = self.transfer_db.path_count(source, destination) - 1
        before = len(self.nodes)
        last = self.transfer_chain(value_id, path, self.terminal_node(value_id))
        created = len(self.nodes) - before
        self._demanded[key] = last
        self.transfer_paths_folded += folded
        tm = _telemetry()
        if tm.enabled:
            tm.count("sndag.transfer_nodes", created)
            tm.count("sndag.transfer_nodes_materialized", created)
            if folded:
                tm.count("sndag.transfer_paths_folded", folded)
            jr = tm.journal
            if jr.enabled:
                jr.emit(
                    "sndag.materialize",
                    value=value_id,
                    source=source,
                    destination=destination,
                    buses=[h.bus for h in path],
                    created=created,
                    folded=folded,
                )
        return last

    def eager_transfer_node_count(self) -> int:
        """Transfer nodes the eager construction would have built.

        Mirrors the eager enumeration — every minimal path between every
        possible (producing storage, consuming storage) pair, for
        operand deliveries and stores alike — but only counts the
        distinct (value, source, destination, bus) hop keys instead of
        creating nodes.  In eager mode this equals the actual count; in
        lazy mode it is the baseline the materialised count is measured
        against (``avoided = eager - materialized``).
        """
        if self._eager_transfer_count is not None:
            return self._eager_transfer_count
        keys: Set[Tuple[int, str, str, str]] = set()

        def count_paths(moved: int, source: str, destination: str) -> None:
            if source == destination:
                return
            for path in self.transfer_db.paths(source, destination):
                for hop in path:
                    keys.add((moved, hop.source, hop.destination, hop.bus))

        for op_id in self.alternatives_of:
            for alt_id in self.alternatives_of[op_id]:
                alternative = self.nodes[alt_id].alternative
                destination = self.machine.unit(alternative.unit).register_file
                for operand_id in _alternative_operands(self, op_id, alternative):
                    for source in _possible_storages(self, operand_id):
                        count_paths(operand_id, source, destination)
        for store_id in self.dag.stores:
            producer = self.dag.node(store_id).operands[0]
            for source in _possible_storages(self, producer):
                count_paths(producer, source, self.machine.data_memory)
        self._eager_transfer_count = len(keys)
        return self._eager_transfer_count

    # -- queries ----------------------------------------------------------

    def node(self, node_id: int) -> SNNode:
        """Look up a Split-Node DAG node by id."""
        return self.nodes[node_id]

    def __len__(self) -> int:
        return len(self.nodes)

    def alternatives(self, original_op: int) -> List[Alternative]:
        """Implementation choices for an original operation node."""
        return [
            self.nodes[a].alternative for a in self.alternatives_of[original_op]
        ]

    def producer_storage(self, original_id: int, unit: Optional[str]) -> str:
        """Where a value lives: DM for leaves, the unit's RF for ops."""
        node = self.dag.node(original_id)
        if is_leaf(node.opcode):
            return self.machine.data_memory
        if unit is None:
            raise ValueError(f"operation n{original_id} needs a unit")
        return self.machine.unit(unit).register_file

    def assignment_space_size(self) -> int:
        """Number of possible split-node covering assignments.

        The paper computes this "by multiplying the number of possible
        target processor operations covering each split-node" — e.g.
        2 x 2 x 3 for Fig. 4.  Complex alternatives are included, so this
        slightly over-counts when patterns absorb interior nodes.
        """
        size = 1
        for op_id in sorted(self.alternatives_of):
            size *= max(1, len(self.alternatives_of[op_id]))
        return size

    def stats(self) -> Dict[str, int]:
        """Node counts per kind; ``total`` is the paper's column."""
        counts = {kind: 0 for kind in SNKind}
        for node in self.nodes.values():
            counts[node.kind] += 1
        return {
            "value_nodes": counts[SNKind.VALUE],
            "split_nodes": counts[SNKind.SPLIT],
            "alternative_nodes": counts[SNKind.ALTERNATIVE],
            "transfer_nodes": counts[SNKind.TRANSFER],
            "total": len(self.nodes),
        }

    def transfer_stats(self) -> Dict[str, int]:
        """Materialisation accounting for the transfer-node layer.

        ``materialized`` counts TRANSFER nodes actually in the DAG,
        ``eager`` what the eager construction would have built, and
        ``avoided`` their difference (clamped at zero: spill/reload
        demands can materialise movements the eager enumeration never
        contained).
        """
        materialized = self.stats()["transfer_nodes"]
        eager = self.eager_transfer_node_count()
        return {
            "materialized": materialized,
            "eager": eager,
            "avoided": max(0, eager - materialized),
            "paths_folded": self.transfer_paths_folded,
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"SplitNodeDAG(machine={self.machine.name!r}, mode={self.mode!r}, "
            f"total={s['total']}, "
            f"splits={s['split_nodes']}, alts={s['alternative_nodes']}, "
            f"xfers={s['transfer_nodes']})"
        )


def build_split_node_dag(
    dag: BlockDAG, machine: Machine, mode: str = "eager"
) -> SplitNodeDAG:
    """Convert a basic-block DAG into its Split-Node DAG on ``machine``.

    ``mode`` selects transfer materialisation: ``"eager"`` (the paper's
    construction — every multi-hop path expanded up front) or ``"lazy"``
    (transfer chains created on demand per assignment; see the module
    docstring).  Both modes accept and reject exactly the same (DAG,
    machine) pairs and lead to bit-identical schedules.

    Raises :class:`UnmappableOperationError` if some operation cannot be
    executed by any functional unit (directly or inside a complex match).
    """
    dag.validate()
    tm = _telemetry()
    with tm.span("sndag.build", category="sndag"):
        sn = _build_split_node_dag(dag, machine, mode)
    if tm.enabled:
        stats = sn.stats()
        tm.count("sndag.value_nodes", stats["value_nodes"])
        tm.count("sndag.split_nodes", stats["split_nodes"])
        tm.count("sndag.alternative_nodes", stats["alternative_nodes"])
        tm.count("sndag.transfer_nodes", stats["transfer_nodes"])
        tm.count("sndag.pattern_matches", len(sn.pattern_matches))
        tm.record("sndag.assignment_space", sn.assignment_space_size())
    return sn


def _build_split_node_dag(
    dag: BlockDAG, machine: Machine, mode: str
) -> SplitNodeDAG:
    sn = SplitNodeDAG(dag, machine, mode=mode)
    sn.pattern_matches = find_pattern_matches(dag, machine)
    matches_by_root: Dict[int, List[PatternMatch]] = {}
    for match in sn.pattern_matches:
        matches_by_root.setdefault(match.root, []).append(match)

    # VALUE nodes for leaves.
    for leaf_id in dag.leaf_nodes():
        sn.value_of[leaf_id] = sn._new_node(
            kind=SNKind.VALUE, original_id=leaf_id
        )

    # SPLIT + ALTERNATIVE nodes for operations (bottom-up so that operand
    # split/value nodes exist when alternatives link to them).
    absorbed_somewhere = {
        op_id
        for match in sn.pattern_matches
        for op_id in match.covers[1:]
    }
    for op_id in dag.schedule_order():
        node = dag.node(op_id)
        if not is_operation(node.opcode):
            continue
        basic_matches = sn.op_db.matches(node.opcode)
        complex_matches = matches_by_root.get(op_id, [])
        if not basic_matches and not complex_matches and op_id not in absorbed_somewhere:
            raise UnmappableOperationError(node.opcode, machine.name)
        split_id = sn._new_node(kind=SNKind.SPLIT, original_id=op_id)
        sn.split_of[op_id] = split_id
        alternative_ids: List[int] = []
        for match in basic_matches:
            children = _operand_links(
                sn, consumer_unit=match.unit, operand_ids=node.operands
            )
            alternative_ids.append(
                sn._new_node(
                    kind=SNKind.ALTERNATIVE,
                    original_id=op_id,
                    alternative=Alternative(
                        unit=match.unit,
                        op_name=match.op.name,
                        covers=(op_id,),
                    ),
                    children=tuple(children),
                )
            )
        for match in complex_matches:
            children = _operand_links(
                sn, consumer_unit=match.unit, operand_ids=match.operands
            )
            alternative_ids.append(
                sn._new_node(
                    kind=SNKind.ALTERNATIVE,
                    original_id=op_id,
                    alternative=Alternative(
                        unit=match.unit,
                        op_name=match.op.name,
                        covers=match.covers,
                        from_pattern=True,
                    ),
                    children=tuple(children),
                )
            )
        sn.alternatives_of[op_id] = alternative_ids
        sn._set_children(split_id, alternative_ids)

    # SPLIT nodes for stores: implementations are transfers of the stored
    # value from each possible producing storage back to data memory.
    for store_id in dag.stores:
        store = dag.node(store_id)
        producer = store.operands[0]
        split_id = sn._new_node(kind=SNKind.SPLIT, original_id=store_id)
        sn.split_of[store_id] = split_id
        children: List[int] = []
        for source in _possible_storages(sn, producer):
            terminal = sn.terminal_node(producer)
            if sn.mode == "lazy":
                # Same reachability contract as the eager expansion, no
                # path chains: the store's value must be able to get
                # back to data memory from every producing storage.
                if not sn.transfer_db.has_path(source, machine.data_memory):
                    raise NoTransferPathError(source, machine.data_memory)
                if terminal not in children:
                    children.append(terminal)
                continue
            for path in sn.transfer_db.paths(source, machine.data_memory):
                last = sn.transfer_chain(producer, path, terminal)
                if last is not None and last not in children:
                    children.append(last)
        sn._set_children(split_id, children)
    return sn


def _possible_storages(sn: SplitNodeDAG, original_id: int) -> List[str]:
    """Every storage the value of ``original_id`` may be produced in."""
    node = sn.dag.node(original_id)
    if is_leaf(node.opcode):
        return [sn.machine.data_memory]
    storages: List[str] = []
    for alt in sn.alternatives(original_id):
        rf = sn.machine.unit(alt.unit).register_file
        if rf not in storages:
            storages.append(rf)
    return storages


def _alternative_operands(
    sn: SplitNodeDAG, op_id: int, alternative: Alternative
) -> Tuple[int, ...]:
    """External operand ids of an alternative (pattern-aware)."""
    if not alternative.from_pattern:
        return sn.dag.node(op_id).operands
    for match in sn.pattern_matches:
        if (
            match.root == op_id
            and match.unit == alternative.unit
            and match.op.name == alternative.op_name
        ):
            return match.operands
    return sn.dag.node(op_id).operands


def _operand_links(
    sn: SplitNodeDAG, consumer_unit: str, operand_ids: Tuple[int, ...]
) -> List[int]:
    """Children of an alternative on ``consumer_unit``: for each operand,
    the nodes delivering that operand into the unit's register file.

    For an operand producible in the consumer's own register file, the
    link goes straight to the operand's split node (no transfer).  In
    eager mode, transfer chains are created (and shared) along each
    minimal path from every other possible source storage; in lazy mode
    the same reachability is verified (unmappable machines fail
    identically) but the link goes straight to the operand's terminal —
    chains appear later, on demand, per chosen assignment.
    """
    destination = sn.machine.unit(consumer_unit).register_file
    children: List[int] = []
    for operand_id in operand_ids:
        terminal = sn.terminal_node(operand_id)
        for source in _possible_storages(sn, operand_id):
            if source == destination:
                if terminal not in children:
                    children.append(terminal)
                continue
            if sn.mode == "lazy":
                if not sn.transfer_db.has_path(source, destination):
                    raise NoTransferPathError(source, destination)
                if terminal not in children:
                    children.append(terminal)
                continue
            for path in sn.transfer_db.paths(source, destination):
                last = sn.transfer_chain(operand_id, path, terminal)
                if last is not None and last not in children:
                    children.append(last)
    return children
