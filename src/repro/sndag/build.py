"""Construction of the Split-Node DAG (paper, Sections III-A/III-B).

For the basic-block DAG and target machine, the builder creates:

- one VALUE node per leaf (variables and constants live in data memory);
- one SPLIT node per operation, with one ALTERNATIVE child per
  (functional unit, machine op) that can execute it — including complex
  instruction matches from the pattern matcher;
- one SPLIT node per store, whose implementations are transfers of the
  stored value back to data memory;
- TRANSFER nodes on every path a value might take between storages:
  memory → consuming unit for leaves, producing unit → consuming unit
  for operation results, producing unit → memory for stores.  Paths from
  several split nodes reconverge: a transfer hop moving the same value
  between the same storages over the same bus is created once.

The resulting object carries everything the covering engine needs — the
alternatives per operation, the transfer database, and the pattern
matches — and reports the node counts in the paper's "Split-Node DAG
#Nodes" column.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import UnmappableOperationError
from repro.ir.dag import BlockDAG
from repro.ir.ops import Opcode, is_leaf, is_operation
from repro.isdl.databases import OperationDatabase, TransferDatabase, TransferPath
from repro.isdl.model import Machine
from repro.sndag.nodes import Alternative, SNKind, SNNode
from repro.sndag.patterns import PatternMatch, find_pattern_matches
from repro.telemetry.session import current as _telemetry
from repro.utils.ids import IdAllocator


class SplitNodeDAG:
    """The Split-Node DAG of one basic block on one machine."""

    def __init__(self, dag: BlockDAG, machine: Machine):
        self.dag = dag
        self.machine = machine
        self.op_db = OperationDatabase(machine)
        self.transfer_db = TransferDatabase(machine)
        self.pattern_matches: List[PatternMatch] = []
        self._ids = IdAllocator()
        self.nodes: Dict[int, SNNode] = {}
        #: original op/store id -> SPLIT node id
        self.split_of: Dict[int, int] = {}
        #: original leaf id -> VALUE node id
        self.value_of: Dict[int, int] = {}
        #: original op id -> ALTERNATIVE node ids (complex ones included)
        self.alternatives_of: Dict[int, List[int]] = {}
        #: (moved original id, source, destination, bus) -> TRANSFER id
        self._transfer_index: Dict[Tuple[int, str, str, str], int] = {}

    # -- construction helpers (used by build_split_node_dag) -------------

    def _new_node(self, **kwargs) -> int:
        node_id = self._ids.allocate()
        self.nodes[node_id] = SNNode(node_id=node_id, **kwargs)
        return node_id

    def _set_children(self, node_id: int, children: List[int]) -> None:
        node = self.nodes[node_id]
        self.nodes[node_id] = SNNode(
            node_id=node.node_id,
            kind=node.kind,
            original_id=node.original_id,
            alternative=node.alternative,
            bus=node.bus,
            source=node.source,
            destination=node.destination,
            children=tuple(children),
        )

    def transfer_chain(
        self, moved_original: int, path: TransferPath, terminal: Optional[int]
    ) -> Optional[int]:
        """Create (or reuse) TRANSFER nodes for ``path``.

        ``terminal`` is the Split-Node-DAG node producing the moved value
        (a VALUE node or a SPLIT node); the first hop points at it.
        Returns the last hop's node id, or ``terminal`` for empty paths.
        """
        below = terminal
        for hop in path:
            key = (moved_original, hop.source, hop.destination, hop.bus)
            node_id = self._transfer_index.get(key)
            if node_id is None:
                node_id = self._new_node(
                    kind=SNKind.TRANSFER,
                    original_id=moved_original,
                    bus=hop.bus,
                    source=hop.source,
                    destination=hop.destination,
                    children=(below,) if below is not None else (),
                )
                self._transfer_index[key] = node_id
            below = node_id
        return below

    # -- queries ----------------------------------------------------------

    def node(self, node_id: int) -> SNNode:
        """Look up a Split-Node DAG node by id."""
        return self.nodes[node_id]

    def __len__(self) -> int:
        return len(self.nodes)

    def alternatives(self, original_op: int) -> List[Alternative]:
        """Implementation choices for an original operation node."""
        return [
            self.nodes[a].alternative for a in self.alternatives_of[original_op]
        ]

    def producer_storage(self, original_id: int, unit: Optional[str]) -> str:
        """Where a value lives: DM for leaves, the unit's RF for ops."""
        node = self.dag.node(original_id)
        if is_leaf(node.opcode):
            return self.machine.data_memory
        if unit is None:
            raise ValueError(f"operation n{original_id} needs a unit")
        return self.machine.unit(unit).register_file

    def assignment_space_size(self) -> int:
        """Number of possible split-node covering assignments.

        The paper computes this "by multiplying the number of possible
        target processor operations covering each split-node" — e.g.
        2 x 2 x 3 for Fig. 4.  Complex alternatives are included, so this
        slightly over-counts when patterns absorb interior nodes.
        """
        size = 1
        for op_id in sorted(self.alternatives_of):
            size *= max(1, len(self.alternatives_of[op_id]))
        return size

    def stats(self) -> Dict[str, int]:
        """Node counts per kind; ``total`` is the paper's column."""
        counts = {kind: 0 for kind in SNKind}
        for node in self.nodes.values():
            counts[node.kind] += 1
        return {
            "value_nodes": counts[SNKind.VALUE],
            "split_nodes": counts[SNKind.SPLIT],
            "alternative_nodes": counts[SNKind.ALTERNATIVE],
            "transfer_nodes": counts[SNKind.TRANSFER],
            "total": len(self.nodes),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"SplitNodeDAG(machine={self.machine.name!r}, total={s['total']}, "
            f"splits={s['split_nodes']}, alts={s['alternative_nodes']}, "
            f"xfers={s['transfer_nodes']})"
        )


def build_split_node_dag(dag: BlockDAG, machine: Machine) -> SplitNodeDAG:
    """Convert a basic-block DAG into its Split-Node DAG on ``machine``.

    Raises :class:`UnmappableOperationError` if some operation cannot be
    executed by any functional unit (directly or inside a complex match).
    """
    dag.validate()
    tm = _telemetry()
    with tm.span("sndag.build", category="sndag"):
        sn = _build_split_node_dag(dag, machine)
    if tm.enabled:
        stats = sn.stats()
        tm.count("sndag.value_nodes", stats["value_nodes"])
        tm.count("sndag.split_nodes", stats["split_nodes"])
        tm.count("sndag.alternative_nodes", stats["alternative_nodes"])
        tm.count("sndag.transfer_nodes", stats["transfer_nodes"])
        tm.count("sndag.pattern_matches", len(sn.pattern_matches))
        tm.record("sndag.assignment_space", sn.assignment_space_size())
    return sn


def _build_split_node_dag(dag: BlockDAG, machine: Machine) -> SplitNodeDAG:
    sn = SplitNodeDAG(dag, machine)
    sn.pattern_matches = find_pattern_matches(dag, machine)
    matches_by_root: Dict[int, List[PatternMatch]] = {}
    for match in sn.pattern_matches:
        matches_by_root.setdefault(match.root, []).append(match)

    # VALUE nodes for leaves.
    for leaf_id in dag.leaf_nodes():
        sn.value_of[leaf_id] = sn._new_node(
            kind=SNKind.VALUE, original_id=leaf_id
        )

    # SPLIT + ALTERNATIVE nodes for operations (bottom-up so that operand
    # split/value nodes exist when alternatives link to them).
    absorbed_somewhere = {
        op_id
        for match in sn.pattern_matches
        for op_id in match.covers[1:]
    }
    for op_id in dag.schedule_order():
        node = dag.node(op_id)
        if not is_operation(node.opcode):
            continue
        basic_matches = sn.op_db.matches(node.opcode)
        complex_matches = matches_by_root.get(op_id, [])
        if not basic_matches and not complex_matches and op_id not in absorbed_somewhere:
            raise UnmappableOperationError(node.opcode, machine.name)
        split_id = sn._new_node(kind=SNKind.SPLIT, original_id=op_id)
        sn.split_of[op_id] = split_id
        alternative_ids: List[int] = []
        for match in basic_matches:
            children = _operand_links(
                sn, consumer_unit=match.unit, operand_ids=node.operands
            )
            alternative_ids.append(
                sn._new_node(
                    kind=SNKind.ALTERNATIVE,
                    original_id=op_id,
                    alternative=Alternative(
                        unit=match.unit,
                        op_name=match.op.name,
                        covers=(op_id,),
                    ),
                    children=tuple(children),
                )
            )
        for match in complex_matches:
            children = _operand_links(
                sn, consumer_unit=match.unit, operand_ids=match.operands
            )
            alternative_ids.append(
                sn._new_node(
                    kind=SNKind.ALTERNATIVE,
                    original_id=op_id,
                    alternative=Alternative(
                        unit=match.unit,
                        op_name=match.op.name,
                        covers=match.covers,
                        from_pattern=True,
                    ),
                    children=tuple(children),
                )
            )
        sn.alternatives_of[op_id] = alternative_ids
        sn._set_children(split_id, alternative_ids)

    # SPLIT nodes for stores: implementations are transfers of the stored
    # value from each possible producing storage back to data memory.
    for store_id in dag.stores:
        store = dag.node(store_id)
        producer = store.operands[0]
        split_id = sn._new_node(kind=SNKind.SPLIT, original_id=store_id)
        sn.split_of[store_id] = split_id
        children: List[int] = []
        for source in _possible_storages(sn, producer):
            terminal = _terminal_node(sn, producer)
            for path in sn.transfer_db.paths(source, machine.data_memory):
                last = sn.transfer_chain(producer, path, terminal)
                if last is not None and last not in children:
                    children.append(last)
        sn._set_children(split_id, children)
    return sn


def _possible_storages(sn: SplitNodeDAG, original_id: int) -> List[str]:
    """Every storage the value of ``original_id`` may be produced in."""
    node = sn.dag.node(original_id)
    if is_leaf(node.opcode):
        return [sn.machine.data_memory]
    storages: List[str] = []
    for alt in sn.alternatives(original_id):
        rf = sn.machine.unit(alt.unit).register_file
        if rf not in storages:
            storages.append(rf)
    return storages


def _terminal_node(sn: SplitNodeDAG, original_id: int) -> int:
    """The Split-Node-DAG node a transfer chain of this value ends at."""
    node = sn.dag.node(original_id)
    if is_leaf(node.opcode):
        return sn.value_of[original_id]
    return sn.split_of[original_id]


def _operand_links(
    sn: SplitNodeDAG, consumer_unit: str, operand_ids: Tuple[int, ...]
) -> List[int]:
    """Children of an alternative on ``consumer_unit``: for each operand,
    the nodes delivering that operand into the unit's register file.

    For an operand producible in the consumer's own register file, the
    link goes straight to the operand's split node (no transfer); for
    every other possible source storage, transfer chains are created (and
    shared) along each minimal path.
    """
    destination = sn.machine.unit(consumer_unit).register_file
    children: List[int] = []
    for operand_id in operand_ids:
        terminal = _terminal_node(sn, operand_id)
        for source in _possible_storages(sn, operand_id):
            if source == destination:
                if terminal not in children:
                    children.append(terminal)
                continue
            for path in sn.transfer_db.paths(source, destination):
                last = sn.transfer_chain(operand_id, path, terminal)
                if last is not None and last not in children:
                    children.append(last)
    return children
