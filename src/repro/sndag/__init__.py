"""The Split-Node DAG (paper, Section III).

The Split-Node DAG makes every implementation choice explicit: each
operation of a basic-block DAG becomes a *split node* whose children are
*alternative* nodes — one per (functional unit, machine op) that can
execute it, including complex-instruction matches — and *data transfer
nodes* appear on every inter-unit / memory path a value might take.
"""

from repro.sndag.nodes import SNKind, SNNode, Alternative
from repro.sndag.build import SplitNodeDAG, build_split_node_dag
from repro.sndag.patterns import PatternMatch, find_pattern_matches
from repro.sndag.render import split_node_dag_to_dot, format_split_node_dag

__all__ = [
    "SNKind",
    "SNNode",
    "Alternative",
    "SplitNodeDAG",
    "build_split_node_dag",
    "PatternMatch",
    "find_pattern_matches",
    "split_node_dag_to_dot",
    "format_split_node_dag",
]
