"""Complex-instruction pattern matching (paper, Section III-B).

"The Split-Node DAG structure can easily incorporate complex
instructions ... by utilizing an initial pattern matching phase that
detects which nodes in the original expression DAG can be covered by a
complex instruction supported by the target processor."

A machine op whose semantics tree spans several IR operations (e.g.
``MAC = ADD(MUL($0,$1), $2)``) is matched against the expression DAG.
A match is only usable if every *interior* matched node has a single
consumer and is not stored — otherwise the intermediate value would be
needed elsewhere but a complex instruction does not expose it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from repro.ir.dag import BlockDAG
from repro.isdl.model import ArgRef, FunctionalUnit, Machine, MachineOp, OpExpr


@dataclass(frozen=True)
class PatternMatch:
    """A complex instruction applicable at ``root``.

    Attributes:
        unit: functional unit executing the complex op.
        op: the complex machine op.
        root: original-DAG id of the match root (whose value the complex
            op produces).
        covers: all matched original operation ids (root first).
        operands: original-DAG ids feeding the complex op, in the order
            of the op's operand slots ($0, $1, ...).
    """

    unit: str
    op: MachineOp
    root: int
    covers: Tuple[int, ...]
    operands: Tuple[int, ...]


def _match_tree(
    dag: BlockDAG,
    expr: Union[OpExpr, ArgRef],
    node_id: int,
    consumers: Dict[int, List[int]],
    stored: frozenset,
    is_root: bool,
) -> Union[Tuple[List[int], Dict[int, int]], None]:
    """Try to match ``expr`` rooted at ``node_id``.

    Returns (covered_op_ids, {arg_index: operand_node_id}) or None.
    """
    if isinstance(expr, ArgRef):
        return [], {expr.index: node_id}
    node = dag.node(node_id)
    if node.opcode is not expr.opcode:
        return None
    if not is_root:
        # Interior nodes must be single-consumer and not externally
        # observable, or the intermediate value would still be needed.
        if len(consumers.get(node_id, ())) != 1 or node_id in stored:
            return None
    covered = [node_id]
    bindings: Dict[int, int] = {}
    for sub_expr, operand_id in zip(expr.args, node.operands):
        result = _match_tree(dag, sub_expr, operand_id, consumers, stored, False)
        if result is None:
            return None
        sub_covered, sub_bindings = result
        covered.extend(sub_covered)
        for index, bound in sub_bindings.items():
            if index in bindings and bindings[index] != bound:
                return None  # same slot bound to two different values
            bindings[index] = bound
    return covered, bindings


def find_pattern_matches(dag: BlockDAG, machine: Machine) -> List[PatternMatch]:
    """All complex-instruction matches of ``machine`` in ``dag``.

    Deterministic order: by root node id, then unit declaration order.
    """
    complex_ops = machine.complex_ops()
    if not complex_ops:
        return []
    consumers = dag.consumers()
    stored = frozenset(
        dag.node(s).operands[0] for s in dag.stores
    ) & frozenset(dag.operation_nodes())
    # A stored interior is fine only at the root; record stored ops for
    # the interior check.  (Stored ids are original nodes whose value is
    # written to memory.)
    matches: List[PatternMatch] = []
    for node_id in sorted(dag.operation_nodes()):
        for unit, op in complex_ops:
            result = _match_tree(
                dag, op.semantics, node_id, consumers, stored, True
            )
            if result is None:
                continue
            covered, bindings = result
            arity = op.semantics.input_count()
            if sorted(bindings) != list(range(arity)):
                continue  # pattern references a slot the DAG never binds
            matches.append(
                PatternMatch(
                    unit=unit.name,
                    op=op,
                    root=node_id,
                    covers=tuple(covered),
                    operands=tuple(bindings[i] for i in range(arity)),
                )
            )
    return matches
