"""Node kinds of the Split-Node DAG."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class SNKind(enum.Enum):
    """Kinds of Split-Node DAG nodes.

    VALUE
        A leaf of the original DAG (variable or constant), resident in
        data memory at block entry.
    SPLIT
        Corresponds to one operation (or store) node of the original DAG;
        its children are the alternatives.
    ALTERNATIVE
        One concrete way of performing the split node's operation: a
        machine op on a functional unit (possibly a complex instruction
        covering several original operations), or — for store split
        nodes — a transfer of the stored value back to data memory.
    TRANSFER
        A data movement across one bus hop, inserted on a path between a
        split node and an operation descendant (or between memory and a
        consumer).
    """

    VALUE = "value"
    SPLIT = "split"
    ALTERNATIVE = "alternative"
    TRANSFER = "transfer"


@dataclass(frozen=True)
class Alternative:
    """Payload of an ALTERNATIVE node: which machine op on which unit.

    ``covers`` lists the original-DAG operation ids this alternative
    implements — one id for a basic op, several for a complex
    instruction.  ``from_pattern`` marks alternatives produced by the
    pattern matcher, whose operand order comes from the recorded
    :class:`~repro.sndag.patterns.PatternMatch` rather than from the
    original node (this includes single-operation machine ops with
    permuted operand semantics).
    """

    unit: str
    op_name: str
    covers: Tuple[int, ...]
    from_pattern: bool = False

    @property
    def is_complex(self) -> bool:
        """True when this alternative covers several operations."""
        return len(self.covers) > 1


@dataclass(frozen=True)
class SNNode:
    """One Split-Node DAG node.

    Attributes:
        node_id: dense id within the Split-Node DAG.
        kind: the node kind (see :class:`SNKind`).
        original_id: the original-DAG node this derives from — the
            operation for SPLIT/ALTERNATIVE, the leaf for VALUE, and the
            node whose value is being moved for TRANSFER.
        alternative: payload for ALTERNATIVE nodes.
        bus, source, destination: payload for TRANSFER nodes.
        children: structural descendants (alternatives under a split,
            operand splits/values/transfers under an alternative).
    """

    node_id: int
    kind: SNKind
    original_id: int
    alternative: Optional[Alternative] = None
    bus: Optional[str] = None
    source: Optional[str] = None
    destination: Optional[str] = None
    children: Tuple[int, ...] = ()

    def describe(self) -> str:
        """Short human-readable tag used in renders and errors."""
        if self.kind is SNKind.VALUE:
            return f"value(n{self.original_id})"
        if self.kind is SNKind.SPLIT:
            return f"split(n{self.original_id})"
        if self.kind is SNKind.ALTERNATIVE:
            alt = self.alternative
            tag = "+".join(f"n{c}" for c in alt.covers)
            return f"{alt.op_name}@{alt.unit}[{tag}]"
        return f"xfer(n{self.original_id}: {self.source}->{self.destination} via {self.bus})"
