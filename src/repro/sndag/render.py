"""Text and DOT renderings of Split-Node DAGs (for Fig. 4 and debugging)."""

from __future__ import annotations

from typing import List

from repro.sndag.build import SplitNodeDAG
from repro.sndag.nodes import SNKind


def format_split_node_dag(sn: SplitNodeDAG) -> str:
    """One line per node: id, kind, description, children."""
    lines: List[str] = [repr(sn)]
    for node_id in sorted(sn.nodes):
        node = sn.nodes[node_id]
        children = ", ".join(f"s{c}" for c in node.children)
        suffix = f" -> [{children}]" if children else ""
        lines.append(f"  s{node_id}: {node.describe()}{suffix}")
    return "\n".join(lines)


_SHAPES = {
    SNKind.VALUE: "plaintext",
    SNKind.SPLIT: "diamond",
    SNKind.ALTERNATIVE: "ellipse",
    SNKind.TRANSFER: "box",
}


def split_node_dag_to_dot(sn: SplitNodeDAG, name: str = "sndag") -> str:
    """Graphviz DOT export in the style of the paper's Fig. 4."""
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    for node_id in sorted(sn.nodes):
        node = sn.nodes[node_id]
        label = node.describe().replace('"', "'")
        lines.append(
            f'  s{node_id} [label="{label}", shape={_SHAPES[node.kind]}];'
        )
    for node_id in sorted(sn.nodes):
        for child in sn.nodes[node_id].children:
            lines.append(f"  s{node_id} -> s{child};")
    lines.append("}")
    return "\n".join(lines)
