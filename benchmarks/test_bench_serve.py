"""Batch-service cache efficiency under zipfian load — ``BENCH_serve.json``.

Runs the serve bench's cold/warm experiment: a zipfian mix of
(example × machine × config) jobs compiled twice against one persistent
block cache, first cold (empty directory) and then warm (the replay a
long-lived service or CI re-run sees).  Writes
``benchmarks/results/BENCH_serve.json`` (schema ``repro/bench-serve/v1``)
plus the repo-root artifact copy.

Gate: the warm replay must be bit-identical to the cold pass (assembly
and schedule maps per job — the cache must never change output), the
warm hit rate must be high (every job was seen before), and the warm
pass must clear the 2x wall-clock bar from the issue's acceptance
criteria.  CI's ``serve-smoke`` job regenerates and schema-validates the
file on every push.
"""

from __future__ import annotations

import json

from repro.serve import (
    collect_serve_bench,
    make_serve_report,
    validate_serve_report,
    write_serve_report,
)

from conftest import REPO_ROOT, full_mode, write_result


def test_bench_serve(benchmark, results_dir):
    draws = 48 if full_mode() else 24
    entries = benchmark.pedantic(
        lambda: collect_serve_bench(draws=draws, seed=0, workers=0),
        rounds=1,
        iterations=1,
    )
    path = results_dir / "BENCH_serve.json"
    write_serve_report(str(path), entries)
    write_serve_report(str(REPO_ROOT / "BENCH_serve.json"), entries)
    payload = json.loads(path.read_text())
    validate_serve_report(payload)  # round-trips schema-valid

    lines = [
        "mix               jobs  uniq  cold s  warm s  speedup"
        "  warm hit  identical"
    ]
    for entry in entries:
        lines.append(
            f"{entry['mix']:16s}  {entry['jobs']:4d}  {entry['unique_jobs']:4d}"
            f"  {entry['cold_s']:6.2f}  {entry['warm_s']:6.2f}"
            f"  {entry['speedup']:6.2f}x"
            f"  {entry['warm_hit_rate']:8.2f}"
            f"  {entry['identical']}"
        )
    write_result("serve_bench.txt", "\n".join(lines))

    for entry in entries:
        # Fidelity: warm results byte-for-byte equal to cold ones.
        assert entry["identical"], entry["mix"]
        # The zipfian mix actually repeats jobs (cold pass already hits
        # within the run) and the warm pass hits on everything.
        assert entry["jobs"] > entry["unique_jobs"]
        assert entry["warm_hit_rate"] >= 0.9, entry
        assert entry["cache"]["bad_entries"] == 0, entry
        # Speed: the acceptance bar — a warm replay at least 2x faster.
        assert entry["speedup"] >= 2.0, (
            f"{entry['mix']}: warm pass only {entry['speedup']:.2f}x "
            f"over cold"
        )


def test_bench_serve_report_shape(benchmark):
    """A tiny collection round-trips the schema and records both passes."""
    entries = benchmark.pedantic(
        lambda: collect_serve_bench(draws=10, seed=1, workers=0),
        rounds=1,
        iterations=1,
    )
    assert len(entries) == 1
    payload = make_serve_report(entries)
    validate_serve_report(payload)
    entry = entries[0]
    assert entry["cold_s"] > 0 and entry["warm_s"] > 0
    assert entry["identical"] is True
