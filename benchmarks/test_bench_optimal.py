"""Corpus-wide optimality gap — ``BENCH_optimal.json``.

Re-solves the Table-I / Table-II workloads to proven minimality with
the constraint-solver backend and compares the heuristic engine's block
lengths against the proofs, per clique kernel (schema
``repro/bench-optimal/v1``).  This turns the paper's "hand-coded
optimal" column into a regenerable artifact: the summary says how many
blocks the heuristic left cycles on, and by how much.

Gate: every solve in the bench corpus must finish *proven* (the
workloads are sized for seconds, not budget-exhaustion), the two clique
kernels must agree on both the heuristic seed cost and the proven
optimum, and no gap may be negative (the driver guarantees the solver
never reports worse than the heuristic).

``REPRO_FULL=1`` adds the register-starved rows (Ex4/Ex5 at 2
registers per file — the paper's Ex6/Ex7 setting), which take a few
seconds each.
"""

from __future__ import annotations

import json

from repro.optimal import (
    GAP_WORKLOADS,
    collect_optimal_bench,
    format_gap_table,
    validate_optimal_report,
    write_optimal_report,
)

from conftest import REPO_ROOT, full_mode, write_result

#: Smoke rows: everything at 4 registers solves in well under a second.
SMOKE_WORKLOADS = [row for row in GAP_WORKLOADS if row[2] >= 4]


def test_bench_optimal_gap(benchmark, results_dir):
    table = list(GAP_WORKLOADS) if full_mode() else SMOKE_WORKLOADS
    entries = benchmark.pedantic(
        lambda: collect_optimal_bench(workloads=table),
        rounds=1,
        iterations=1,
    )
    path = results_dir / "BENCH_optimal.json"
    write_optimal_report(str(path), entries)
    write_optimal_report(str(REPO_ROOT / "BENCH_optimal.json"), entries)
    payload = json.loads(path.read_text())
    validate_optimal_report(payload)  # round-trips schema-valid

    write_result("optimal_gap.txt", format_gap_table(entries))

    # Honesty gate: the bench corpus is sized to finish its proofs.
    for entry in entries:
        assert entry["proven"], (
            f"{entry['workload']} on {entry['machine']}: solve "
            f"exhausted its conflict budget"
        )
        assert entry["gap"] >= 0, entry
        assert entry["solver"]["sat_calls"] > 0, entry

    # Kernel independence: the exact search must not care which clique
    # kernel produced the heuristic seed, and the seeds themselves are
    # kernel-identical (the cover bench's fidelity gate).
    by_key = {}
    for entry in entries:
        key = (entry["workload"], entry["machine"], entry["registers"])
        by_key.setdefault(key, []).append(entry)
    for key, pair in by_key.items():
        assert len(pair) == 2, key
        assert pair[0]["optimal_cost"] == pair[1]["optimal_cost"], key
        assert pair[0]["heuristic_cost"] == pair[1]["heuristic_cost"], key

    # The corpus must demonstrate a real heuristic gap somewhere —
    # that is the point of the artifact (the paper's own tables show
    # the heuristic losing cycles on Ex2/Ex4/Ex5).
    assert payload["summary"]["improved"] > 0
    assert payload["summary"]["gap_cycles"] > 0
    assert payload["summary"]["budget_exhausted"] == 0


def test_bench_optimal_report_shape(benchmark):
    """A single-workload collection round-trips the schema."""
    entries = benchmark.pedantic(
        lambda: collect_optimal_bench(
            workloads=[("Ex1", "arch1", 4)], kernels=("bitmask",)
        ),
        rounds=1,
        iterations=1,
    )
    assert len(entries) == 1
    from repro.optimal import make_optimal_report

    payload = make_optimal_report(entries)
    validate_optimal_report(payload)
    entry = entries[0]
    assert entry["proven"]
    assert entry["cpu_seconds"] > 0
    assert entry["gap"] == entry["heuristic_cost"] - entry["optimal_cost"]
