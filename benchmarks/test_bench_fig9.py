"""Figure 9 — inserting loads and spills into the Split-Node DAG.

Regenerates the figure's behaviour: when register files are too small,
the covering step picks a victim value, adds a spill (S) node and load
(L) nodes, and removes transfer nodes that are no longer required.  The
bench runs Ex4 (= Table I's Ex6 row) and a wide reduction at 2 registers
per file and reports the inserted spill/load tasks, then verifies the
spilled program still computes correctly end to end.
"""

from __future__ import annotations

import pytest

from repro.asmgen import compile_dag
from repro.covering import generate_block_solution
from repro.eval import workload
from repro.ir import BasicBlock, BlockDAG, Function, Opcode, interpret_function
from repro.isdl import example_architecture
from repro.simulator import run_program

from conftest import write_result


def _wide_dag(width: int = 5) -> BlockDAG:
    dag = BlockDAG()
    products = []
    for i in range(width):
        products.append(
            dag.operation(
                Opcode.MUL, (dag.var(f"x{i}"), dag.var(f"y{i}"))
            )
        )
    total = products[0]
    for product in products[1:]:
        total = dag.operation(Opcode.ADD, (total, product))
    dag.store("sum", total)
    return dag


def test_bench_fig9_spill_insertion(benchmark):
    # Ex5 at 2 registers per file is the paper's Ex7 row: 1 spill.
    machine = example_architecture(2)
    dag = workload("Ex5").build()
    solution = benchmark.pedantic(
        generate_block_solution, args=(dag, machine), rounds=1, iterations=1
    )
    graph = solution.graph
    spills = [t for t in graph.tasks.values() if t.is_spill]
    reloads = [t for t in graph.tasks.values() if t.is_reload]
    lines = [
        "Fig. 9 — load/spill insertion (Ex5 at 2 regs/file = Table I Ex7)",
        f"instructions: {solution.instruction_count}",
        f"spill (S) nodes inserted: {len(spills)} (paper Ex7: 1)",
        f"load (L) nodes inserted:  {len(reloads)}",
    ]
    for task in spills + reloads:
        lines.append(f"  {task.describe()}")
    write_result("fig9_spills.txt", "\n".join(lines))
    assert spills, "expected at least one spill at 2 registers per file"
    assert reloads, "every spill needs at least one reload"
    for spill in spills:
        assert spill.dest_storage == machine.data_memory
    # Registers stayed within the bound despite the pressure.
    for bank, estimate in solution.register_estimate.items():
        assert estimate <= 2


def test_bench_fig9_spilled_code_is_correct(benchmark):
    machine = example_architecture(2)
    dag = _wide_dag(5)
    env = {f"x{i}": i + 1 for i in range(5)}
    env.update({f"y{i}": 2 * i - 3 for i in range(5)})

    def compile_and_run():
        compiled = compile_dag(dag, machine)
        return compiled, run_program(compiled.program, machine, env)

    compiled, result = benchmark.pedantic(
        compile_and_run, rounds=1, iterations=1
    )
    function = Function("f")
    function.add_block(BasicBlock("entry", dag))
    reference = interpret_function(function, env)
    write_result(
        "fig9_validation.txt",
        f"spilled program: {compiled.total_instructions} instructions, "
        f"sum = {result.variables['sum']} (reference {reference['sum']})",
    )
    assert result.variables["sum"] == reference["sum"]


def test_bench_fig9_spill_cost_versus_plentiful_registers(benchmark):
    """Table I rows Ex6/Ex7 shape: halving the register files makes the
    code larger, never smaller."""
    lines = ["Block  regs=4  regs=2  spills@2"]

    def run_pair(name):
        dag_local = workload(name).build()
        plenty = generate_block_solution(dag_local, example_architecture(4))
        scarce = generate_block_solution(dag_local, example_architecture(2))
        return plenty, scarce

    for name in ("Ex4", "Ex5"):
        plenty, scarce = (
            benchmark.pedantic(run_pair, args=(name,), rounds=1, iterations=1)
            if name == "Ex4"
            else run_pair(name)
        )
        lines.append(
            f"{name:5s}  {plenty.instruction_count:6d}  "
            f"{scarce.instruction_count:6d}  {scarce.spill_count:8d}"
        )
        assert scarce.instruction_count >= plenty.instruction_count
    write_result("fig9_spill_cost.txt", "\n".join(lines))
