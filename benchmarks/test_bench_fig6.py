"""Figure 6 — pruning the search space of split-node assignments.

Regenerates the paper's worked example: the Fig. 2 block feeding a
COMPL sink that only unit U1 can execute.  The incremental costs must
come out exactly as in the figure — SUB@U1 = 0, SUB@U2 = 1 (pruned),
MUL@U2 = MUL@U3 (both explored), ADD@U1 = 2, ADD@U2 = 4 (pruned) — and
the pruned exploration must select exactly the two assignments with SUB
and ADD on U1.
"""

from __future__ import annotations

import pytest

from repro.covering import HeuristicConfig, explore_assignments
from repro.covering.assignment import _CostModel, _Partial
from repro.ir import BlockDAG, Opcode
from repro.isdl import fig6_architecture
from repro.sndag import build_split_node_dag

from conftest import write_result


def _fig6_dag() -> BlockDAG:
    dag = BlockDAG()
    a, b, c, d = dag.var("a"), dag.var("b"), dag.var("c"), dag.var("d")
    add = dag.operation(Opcode.ADD, (a, b))
    mul = dag.operation(Opcode.MUL, (c, d))
    sub = dag.operation(Opcode.SUB, (add, mul))
    compl = dag.operation(Opcode.NOT, (sub,))
    dag.store("out", compl)
    return dag


def _alt(sn, op_id, unit):
    return next(a for a in sn.alternatives(op_id) if a.unit == unit)


def test_bench_fig6_incremental_costs(benchmark):
    machine = fig6_architecture(4)
    dag = _fig6_dag()
    sn = build_split_node_dag(dag, machine)
    model = _CostModel(sn)
    ops = {dag.node(o).opcode: o for o in dag.operation_nodes()}
    compl, sub, mul, add = (
        ops[Opcode.NOT],
        ops[Opcode.SUB],
        ops[Opcode.MUL],
        ops[Opcode.ADD],
    )

    def compute_costs():
        partial = _Partial(choice={compl: _alt(sn, compl, "U1")}, cost=0)
        costs = {
            "SUB@U1": model.incremental_cost(partial, sub, _alt(sn, sub, "U1")),
            "SUB@U2": model.incremental_cost(partial, sub, _alt(sn, sub, "U2")),
        }
        partial.choice[sub] = _alt(sn, sub, "U1")
        costs["MUL@U2"] = model.incremental_cost(
            partial, mul, _alt(sn, mul, "U2")
        )
        costs["MUL@U3"] = model.incremental_cost(
            partial, mul, _alt(sn, mul, "U3")
        )
        partial.choice[mul] = _alt(sn, mul, "U2")
        costs["ADD@U1"] = model.incremental_cost(
            partial, add, _alt(sn, add, "U1")
        )
        costs["ADD@U2"] = model.incremental_cost(
            partial, add, _alt(sn, add, "U2")
        )
        return costs

    costs = benchmark(compute_costs)
    paper = {
        "SUB@U1": 0,
        "SUB@U2": 1,
        "ADD@U1": 2,
        "ADD@U2": 4,
    }
    lines = ["Fig. 6 — incremental assignment costs (paper value in parens)"]
    for key in ("SUB@U1", "SUB@U2", "MUL@U2", "MUL@U3", "ADD@U1", "ADD@U2"):
        expected = paper.get(key, "equal pair")
        lines.append(f"  {key}: {costs[key]} ({expected})")
    write_result("fig6_incremental_costs.txt", "\n".join(lines))
    for key, expected in paper.items():
        assert costs[key] == expected, key
    assert costs["MUL@U2"] == costs["MUL@U3"]  # "both paths are explored"


def test_bench_fig6_pruned_exploration(benchmark):
    machine = fig6_architecture(4)
    dag = _fig6_dag()
    sn = build_split_node_dag(dag, machine)
    assignments = benchmark(
        explore_assignments, sn, HeuristicConfig.default()
    )
    ops = {dag.node(o).opcode: o for o in dag.operation_nodes()}
    lines = [
        "Fig. 6 — surviving assignments after pruning "
        "(paper: the two with SUB and ADD on U1)"
    ]
    for assignment in assignments:
        placement = {
            dag.node(op).opcode.name: alt.unit
            for op, alt in assignment.choice.items()
        }
        lines.append(f"  cost {assignment.cost}: {placement}")
    write_result("fig6_pruned_assignments.txt", "\n".join(lines))
    assert len(assignments) == 2
    for assignment in assignments:
        assert assignment.unit_of(ops[Opcode.SUB]) == "U1"
        assert assignment.unit_of(ops[Opcode.ADD]) == "U1"
    assert {a.unit_of(ops[Opcode.MUL]) for a in assignments} == {"U2", "U3"}
