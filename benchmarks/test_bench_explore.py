"""Architecture-exploration frontier — ``BENCH_explore.json``.

Runs a smoke-sized exploration (the seeded population the
``explore-smoke`` CI job also uses; ``REPRO_FULL=1`` scales up to the
acceptance-criteria population of 50) and writes the
``repro/bench-explore/v1`` artifact to ``benchmarks/results/`` plus the
repo-root copy that CI uploads and the repository commits.

Gate: the artifact is schema-valid, the frontier is non-trivial
(several mutually non-dominated machines), and regenerating the payload
from the same seed yields byte-identical content — the artifact is a
pure function of the seed, so any diff in review is a real behaviour
change, not noise.
"""

from __future__ import annotations

import json

from repro.explore import (
    explore_report_bytes,
    format_explore_table,
    run_explore,
    validate_explore_report,
    write_explore_report,
)

from conftest import REPO_ROOT, full_mode, write_result

SEED = 0


def test_bench_explore(benchmark, results_dir, tmp_path):
    population = 50 if full_mode() else 12
    workers = 4 if full_mode() else 0
    payload, timing = benchmark.pedantic(
        lambda: run_explore(
            seed=SEED,
            population=population,
            workers=workers,
            cache_dir=str(tmp_path / "cache"),
        ),
        rounds=1,
        iterations=1,
    )
    path = results_dir / "BENCH_explore.json"
    write_explore_report(str(path), payload)
    write_explore_report(str(REPO_ROOT / "BENCH_explore.json"), payload)
    assert json.loads(path.read_text()) == payload  # round-trips

    validate_explore_report(payload)
    totals = payload["totals"]
    assert totals["candidates"] == population
    assert totals["frontier"] >= 3, "frontier should be non-trivial"
    assert totals["workloads_ok"] > 0

    # Pure function of the seed: the warm regeneration (same cache
    # directory, so every block hits) serializes to the same bytes.
    again, _ = run_explore(
        seed=SEED,
        population=population,
        workers=workers,
        cache_dir=str(tmp_path / "cache"),
    )
    assert explore_report_bytes(again) == explore_report_bytes(payload)

    write_result(
        "explore_frontier.txt",
        format_explore_table(payload)
        + f"\n\n[{timing['evaluations']} evaluations, "
        f"workers={timing['workers']}]",
    )
