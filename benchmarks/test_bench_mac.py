"""Extension bench: complex-instruction utilisation (paper, §III-B).

"The Split-Node DAG structure can easily incorporate complex
instructions ... by utilizing an initial pattern matching phase."  The
bench compiles multiply-accumulate-rich kernels on the Fig. 3 machine
and on its MAC-equipped variant and measures how much code the complex
instruction saves.

Expected shape: MAC-friendly blocks shrink on the MAC machine (each
matched pattern fuses a MUL+ADD pair into one slot *and* removes the
forwarding transfer between them); blocks without multiply-add chains
are unaffected.
"""

from __future__ import annotations

import pytest

from repro.asmgen import compile_dag
from repro.covering import HeuristicConfig, generate_block_solution
from repro.ir import BasicBlock, BlockDAG, Function, Opcode, interpret_function
from repro.isdl import example_architecture, mac_dsp_architecture
from repro.simulator import run_program

from conftest import write_result


def _dot_product(taps: int) -> BlockDAG:
    dag = BlockDAG()
    acc = dag.var("acc")
    for index in range(taps):
        product = dag.operation(
            Opcode.MUL, (dag.var(f"x{index}"), dag.var(f"h{index}"))
        )
        acc = dag.operation(Opcode.ADD, (product, acc))
    dag.store("acc", acc)
    return dag


def _mac_free_block() -> BlockDAG:
    dag = BlockDAG()
    a, b, c, d = dag.var("a"), dag.var("b"), dag.var("c"), dag.var("d")
    dag.store(
        "out",
        dag.operation(
            Opcode.SUB,
            (
                dag.operation(Opcode.ADD, (a, b)),
                dag.operation(Opcode.ADD, (c, d)),
            ),
        ),
    )
    return dag


CASES = [
    ("dot2", _dot_product(2)),
    ("dot3", _dot_product(3)),
    ("dot4", _dot_product(4)),
    ("no-mac", _mac_free_block()),
]


def test_bench_mac_utilisation(benchmark):
    plain = example_architecture(4)
    mac = mac_dsp_architecture(4)
    # Exhaustive exploration so the MAC alternatives are always
    # considered (the beam can otherwise prefer spreading across units).
    config = HeuristicConfig.heuristics_off()

    def compile_all():
        rows = []
        for name, dag in CASES:
            base = generate_block_solution(dag, plain, config)
            fused = generate_block_solution(dag, mac, config)
            macs = sum(
                1
                for task in fused.graph.tasks.values()
                if task.op_name == "MAC"
            )
            rows.append((name, dag, base, fused, macs))
        return rows

    rows = benchmark.pedantic(compile_all, rounds=1, iterations=1)
    lines = ["case    plain  with-MAC  MACs used  saved"]
    for name, dag, base, fused, macs in rows:
        saved = base.instruction_count - fused.instruction_count
        lines.append(
            f"{name:6s}  {base.instruction_count:5d}  "
            f"{fused.instruction_count:8d}  {macs:9d}  {saved:+5d}"
        )
        # Correctness on the MAC machine, end to end.
        env = {name_: 3 for name_ in dag.var_symbols()}
        function = Function(name)
        function.add_block(BasicBlock("entry", dag))
        reference = interpret_function(function, env)
        compiled = compile_dag(dag, mac, config=config)
        result = run_program(compiled.program, mac, env)
        for symbol in dag.store_symbols():
            assert result.variables[symbol] == reference[symbol], name
        # Shape: the MAC machine never loses, and wins where MACs match.
        assert fused.instruction_count <= base.instruction_count
        if name.startswith("dot"):
            assert macs >= 1, name
        else:
            assert macs == 0
    total_saved = sum(
        base.instruction_count - fused.instruction_count
        for _n, _d, base, fused, _m in rows
    )
    lines.append(f"total instructions saved: {total_saved}")
    write_result("mac_utilisation.txt", "\n".join(lines))
    assert total_saved > 0
