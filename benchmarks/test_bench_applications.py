"""Application-level bench: whole programs, dynamic cycle counts.

Extends the paper's basic-block evaluation to complete kernels: each
application compiles on the control-flow machine, executes on the
simulator against the reference interpreter, and reports static code
size (the paper's ROM metric) plus dynamic cycles and slot utilisation.
"""

from __future__ import annotations

import pytest

from repro.asmgen import compile_function
from repro.eval.applications import APPLICATIONS
from repro.ir import interpret_function
from repro.isdl import control_flow_architecture
from repro.simulator import profile_run, run_program

from conftest import write_result


@pytest.fixture(scope="module")
def machine():
    return control_flow_architecture(4)


def test_bench_application_suite(benchmark, machine):
    def compile_all():
        return {
            app.name: compile_function(app.build(), machine)
            for app in APPLICATIONS
        }

    compiled = benchmark.pedantic(compile_all, rounds=1, iterations=1)
    lines = [
        "app       static instr  dyn cycles  NOPs  bus busy%  validated"
    ]
    for app in APPLICATIONS:
        program = compiled[app.name].program
        reference = interpret_function(app.build(), app.inputs)
        result = run_program(program, machine, app.inputs)
        ok = all(
            result.variables[o] == reference[o] for o in app.outputs
        )
        stats = profile_run(program, machine, app.inputs)
        bus = stats.slot_utilization(machine)["B1"]
        lines.append(
            f"{app.name:8s}  {len(program.instructions):12d}  "
            f"{result.cycles:10d}  {stats.nops:4d}  {100 * bus:8.0f}%  "
            f"{'yes' if ok else 'NO'}"
        )
        assert ok, app.name
    write_result("applications.txt", "\n".join(lines))
