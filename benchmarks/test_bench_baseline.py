"""Concurrent vs. phase-ordered code generation (Section I-B's thesis).

"Decisions made in one phase have a profound effect on the other
phases" — the paper's motivation for solving instruction selection,
resource allocation, and scheduling together.  This bench compares the
concurrent engine against the sequential baseline (naive unit binding →
transfer insertion → list scheduling) on the Table I workloads.

Expected shape: the baseline never wins; on blocks with real unit-
assignment choice it loses by one or more instructions.
"""

from __future__ import annotations

import pytest

from repro.baselines import sequential_block_solution
from repro.covering import HeuristicConfig, generate_block_solution
from repro.eval import WORKLOADS
from repro.isdl import example_architecture

from conftest import write_result


@pytest.fixture(scope="module")
def comparison():
    machine = example_architecture(4)
    rows = []
    for load in WORKLOADS:
        dag = load.build()
        aviv = generate_block_solution(
            dag, machine, HeuristicConfig.default()
        )
        first = sequential_block_solution(dag, machine, strategy="first")
        round_robin = sequential_block_solution(
            dag, machine, strategy="round_robin"
        )
        rows.append((load.name, aviv, first, round_robin))
    return rows


def test_bench_concurrent_vs_sequential(benchmark, comparison):
    machine = example_architecture(4)
    dag = WORKLOADS[2].build()
    benchmark.pedantic(
        sequential_block_solution, args=(dag, machine), rounds=1, iterations=1
    )
    lines = ["Block  AVIV  seq(first)  seq(round-robin)"]
    for name, aviv, first, round_robin in comparison:
        lines.append(
            f"{name:5s}  {aviv.instruction_count:4d}  "
            f"{first.instruction_count:10d}  "
            f"{round_robin.instruction_count:16d}"
        )
        # Per block the baseline may luck into a near-tie (the heuristic
        # engine is itself approximate — its own paper gap on Ex5 is +2),
        # but it must never win by more than an instruction.
        assert first.instruction_count >= aviv.instruction_count - 1
        assert round_robin.instruction_count >= aviv.instruction_count - 1
    total_aviv = sum(r[1].instruction_count for r in comparison)
    total_seq = sum(
        min(r[2].instruction_count, r[3].instruction_count)
        for r in comparison
    )
    lines.append(
        f"total  {total_aviv}  (best sequential: {total_seq}, "
        f"overhead {100.0 * (total_seq - total_aviv) / total_aviv:.1f}%)"
    )
    write_result("baseline_sequential.txt", "\n".join(lines))
    # Across the suite, phase ordering must cost something.
    assert total_seq > total_aviv


def test_bench_sequential_is_faster_but_worse(benchmark, comparison):
    """The classic trade: the baseline runs faster (no search) but
    produces larger code."""
    machine = example_architecture(4)
    dag = WORKLOADS[4].build()

    def run_both():
        aviv = generate_block_solution(dag, machine)
        seq = sequential_block_solution(dag, machine)
        return aviv, seq

    aviv, seq = benchmark.pedantic(run_both, rounds=1, iterations=1)
    write_result(
        "baseline_tradeoff.txt",
        f"Ex5: AVIV {aviv.instruction_count} instr in "
        f"{aviv.cpu_seconds:.3f}s; sequential {seq.instruction_count} "
        f"instr in {seq.cpu_seconds:.3f}s",
    )
    assert seq.instruction_count >= aviv.instruction_count - 1
