"""Figures 7 and 8 — the pairwise-parallelism matrix and maximal-clique
generation.

Fig. 7's matrix is reproduced verbatim from the paper and Fig. 8's
algorithm must generate exactly the cliques the paper lists:
(C1: N2), (C2: N10, N9), (C3: N10, N14).  A second bench measures the
generator on realistic task graphs with and without the level-window
heuristic of Section IV-C.2 (the heuristic must not increase the clique
count).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.covering import (
    HeuristicConfig,
    TaskGraph,
    explore_assignments,
    generate_maximal_cliques,
    parallelism_matrix,
)
from repro.eval import workload
from repro.isdl import example_architecture
from repro.sndag import build_split_node_dag

from conftest import write_result

#: Fig. 7 verbatim, rows/cols in order N2, N9, N10, N14.
FIG7_MATRIX = [
    [0, 1, 1, 1],
    [1, 0, 0, 1],
    [1, 0, 0, 0],
    [1, 1, 0, 0],
]
FIG7_NAMES = ["N2", "N9", "N10", "N14"]


def test_bench_fig7_fig8_paper_example(benchmark):
    matrix = np.array(FIG7_MATRIX, dtype=np.uint8)
    np.fill_diagonal(matrix, 1)  # a node never merges with itself
    cliques = benchmark(generate_maximal_cliques, matrix)
    as_names = sorted(
        tuple(sorted(FIG7_NAMES[i] for i in clique)) for clique in cliques
    )
    lines = ["Fig. 7 matrix (0 = parallel):"]
    header = "      " + "  ".join(f"{n:>3s}" for n in FIG7_NAMES)
    lines.append(header)
    for name, row in zip(FIG7_NAMES, FIG7_MATRIX):
        lines.append(f"  {name:>3s} " + "  ".join(f"{v:3d}" for v in row))
    lines.append("")
    lines.append("Fig. 8 maximal cliques (paper: C1=(N2) C2=(N10,N9) C3=(N10,N14)):")
    for clique in as_names:
        lines.append(f"  ({', '.join(clique)})")
    write_result("fig7_fig8_cliques.txt", "\n".join(lines))
    assert as_names == [("N10", "N14"), ("N2",), ("N10", "N9")] or as_names == sorted(
        [("N2",), ("N10", "N9"), ("N10", "N14")]
    )
    assert len(cliques) == 3


@pytest.mark.parametrize("level_window", [None, 2], ids=["no-window", "window-2"])
def test_bench_fig8_on_real_task_graphs(benchmark, level_window):
    """Clique generation over the Ex5 task graph — the paper calls this
    "the most time consuming portion of our algorithm" and reduces it
    with the level-window heuristic (IV-C.2)."""
    machine = example_architecture(4)
    dag = workload("Ex5").build()
    sn = build_split_node_dag(dag, machine)
    assignment = explore_assignments(sn, HeuristicConfig.default())[0]
    graph = TaskGraph(sn, assignment)
    matrix, _ = parallelism_matrix(graph, level_window=level_window)

    cliques = benchmark(generate_maximal_cliques, matrix)
    loose_matrix, _ = parallelism_matrix(graph, level_window=None)
    loose = generate_maximal_cliques(loose_matrix)
    write_result(
        f"fig8_real_cliques_{level_window}.txt",
        f"Ex5 task graph: {len(graph)} tasks, level_window={level_window}: "
        f"{len(cliques)} maximal cliques (no window: {len(loose)})",
    )
    assert len(cliques) <= len(loose)
    covered = set().union(*cliques) if cliques else set()
    assert covered == set(range(matrix.shape[0]))
