"""Design-space sweep benches (the paper's co-design pitch, Section I).

Two systematic sweeps over the Table I workloads:

- register-file depth: where does shrinking the banks start costing
  instructions (the Ex6/Ex7 crossover, measured as a curve instead of
  two points);
- utilisation: slot occupancy per resource on the Fig. 3 machine,
  showing the single shared bus as the structural bottleneck of this
  architecture family.
"""

from __future__ import annotations

import pytest

from repro.asmgen import compile_dag
from repro.eval import WORKLOADS, register_file_sweep, workload
from repro.isdl import example_architecture
from repro.simulator import profile_run

from conftest import write_result

REGISTER_COUNTS = (2, 3, 4, 6, 8)


def test_bench_register_file_sweep(benchmark):
    loads = [(w.name, w.build()) for w in WORKLOADS]
    result = benchmark.pedantic(
        register_file_sweep,
        args=(loads, example_architecture, REGISTER_COUNTS),
        rounds=1,
        iterations=1,
    )
    write_result("sweep_register_files.txt", result.table())
    totals = {
        name: result.total_instructions(name)
        for name in result.machines()
    }
    ordered = [totals[f"arch1_r{count}"] for count in REGISTER_COUNTS]
    # Code size is monotone non-increasing in register count, and the
    # curve flattens: beyond the knee extra registers buy nothing.
    assert ordered == sorted(ordered, reverse=True)
    assert ordered[-1] == ordered[-2], "curve should flatten by 6-8 regs"
    # The 2-register point costs something relative to 4 (Ex6/Ex7 story).
    assert ordered[0] > ordered[2]


def test_bench_bus_is_bottleneck(benchmark):
    machine = example_architecture(4)

    def measure():
        rows = []
        for load in WORKLOADS:
            compiled = compile_dag(load.build(), machine)
            stats = profile_run(compiled.program, machine, load.inputs)
            rows.append((load.name, stats.slot_utilization(machine)))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    resources = machine.unit_names() + machine.bus_names()
    lines = [
        "Block  " + "  ".join(f"{r:>5s}" for r in resources)
    ]
    for name, use in rows:
        lines.append(
            f"{name:5s}  "
            + "  ".join(f"{100 * use[r]:4.0f}%" for r in resources)
        )
        # The shared bus is the busiest resource on every block: with
        # memory-resident operands, transfers gate the schedule.
        assert use["B1"] == max(use.values()), name
    write_result("sweep_utilization.txt", "\n".join(lines))
