"""Split-Node DAG transfer materialisation — ``BENCH_sndag.json``.

Builds and compiles the Table I/II workloads on Architecture I and II
under both Split-Node DAG modes and writes
``benchmarks/results/BENCH_sndag.json`` (schema ``repro/bench-sndag/v1``):
per-workload build times for the eager and lazy constructions, the
transfer-node populations (up-front expansion vs on-demand
materialisation, avoided nodes, folded equivalent-cost paths), and the
schedule-identity verdict.

Gate: lazy and eager must produce bit-identical schedules everywhere,
and the headline blowup case — Ex2 on Architecture I, whose eager
expansion creates the paper-visible 43 transfer nodes — must show a
real reduction.  CI regenerates and schema-validates the file on every
push, so a lazy-path fidelity or coverage regression shows up in the
artifact diff.
"""

from __future__ import annotations

import json

from repro.telemetry import (
    collect_sndag_bench,
    make_sndag_report,
    validate_sndag_report,
    write_sndag_report,
)

from conftest import REPO_ROOT, full_mode, write_result


def test_bench_sndag(benchmark, results_dir):
    repeats = 5 if full_mode() else 3
    entries = benchmark.pedantic(
        lambda: collect_sndag_bench(repeats=repeats), rounds=1, iterations=1
    )
    path = results_dir / "BENCH_sndag.json"
    write_sndag_report(str(path), entries)
    write_sndag_report(str(REPO_ROOT / "BENCH_sndag.json"), entries)
    payload = json.loads(path.read_text())
    validate_sndag_report(payload)  # round-trips schema-valid

    lines = [
        "workload  machine    xfer eager  xfer lazy  avoided  folded"
        "  build eager ms  build lazy ms  identical"
    ]
    for entry in entries:
        lines.append(
            f"{entry['workload']:8s}  {entry['machine']:9s}"
            f"  {entry['eager_transfer_nodes']:10d}"
            f"  {entry['lazy_transfer_nodes']:9d}"
            f"  {entry['avoided_transfer_nodes']:7d}"
            f"  {entry['paths_folded']:6d}"
            f"  {1000 * entry['eager_build_s']:14.2f}"
            f"  {1000 * entry['lazy_build_s']:13.2f}"
            f"  {entry['identical']}"
        )
    write_result("sndag_materialization.txt", "\n".join(lines))

    # Fidelity: bit-identical schedules on every workload x machine.
    for entry in entries:
        assert entry["identical"], (
            f"{entry['workload']} on {entry['machine']}"
        )

    # The headline blowup case (ISSUE/ROADMAP): Ex2 on Architecture I
    # eagerly expands 43 transfer nodes; lazy must materialise fewer.
    ex2 = next(
        e
        for e in entries
        if e["workload"] == "Ex2" and e["machine"].startswith("arch1")
    )
    assert ex2["eager_transfer_nodes"] == 43
    assert ex2["lazy_transfer_nodes"] < ex2["eager_transfer_nodes"]
    assert ex2["avoided_transfer_nodes"] > 0

    # Lazy construction itself must never be slower than the eager
    # expansion it skips by more than noise; assert the aggregate wins.
    total_eager = sum(e["eager_build_s"] for e in entries)
    total_lazy = sum(e["lazy_build_s"] for e in entries)
    assert total_lazy <= total_eager * 1.25, (
        f"lazy builds took {total_lazy:.4f}s vs eager {total_eager:.4f}s"
    )


def test_bench_sndag_report_shape(benchmark):
    """A single-workload collection round-trips the schema."""
    entries = benchmark.pedantic(
        lambda: collect_sndag_bench(["Ex1"]), rounds=1, iterations=1
    )
    assert len(entries) == 2  # Ex1 on Architecture I and II
    payload = make_sndag_report(entries)
    validate_sndag_report(payload)
    for entry in entries:
        assert entry["eager_build_s"] > 0 and entry["lazy_build_s"] > 0
        assert entry["identical"] is True
