"""Ablation: the register-aware assignment cost (Section VI, ongoing
work).

"We are currently working on modifying the initial functional unit
assignment cost function to incorporate register resource limits so
that it can detect assignments that are likely to require spills to
memory."  This repo implements that extension
(``HeuristicConfig.register_aware_assignment``); the bench measures its
effect on the spill rows of Table I (Ex4/Ex5 at 2 registers per file)
and on a register-hungry wide reduction.
"""

from __future__ import annotations

import pytest

from repro.covering import HeuristicConfig, generate_block_solution
from repro.eval import workload
from repro.ir import BlockDAG, Opcode
from repro.isdl import example_architecture

from conftest import write_result


def _wide(width: int) -> BlockDAG:
    dag = BlockDAG()
    products = [
        dag.operation(Opcode.MUL, (dag.var(f"x{i}"), dag.var(f"y{i}")))
        for i in range(width)
    ]
    total = products[0]
    for product in products[1:]:
        total = dag.operation(Opcode.ADD, (total, product))
    dag.store("sum", total)
    return dag


CASES = [
    ("Ex4@2", lambda: workload("Ex4").build()),
    ("Ex5@2", lambda: workload("Ex5").build()),
    ("wide6@2", lambda: _wide(6)),
    ("wide8@2", lambda: _wide(8)),
]


def test_bench_register_aware_assignment(benchmark):
    machine = example_architecture(2)
    plain_config = HeuristicConfig.default()
    aware_config = plain_config.with_(register_aware_assignment=True)

    def sweep():
        rows = []
        for name, build in CASES:
            dag = build()
            plain = generate_block_solution(dag, machine, plain_config)
            aware = generate_block_solution(dag, machine, aware_config)
            rows.append((name, plain, aware))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Register-aware assignment cost (paper's ongoing work)",
        "case     instr(off)  spills(off)  instr(on)  spills(on)",
    ]
    for name, plain, aware in rows:
        lines.append(
            f"{name:8s}  {plain.instruction_count:9d}  "
            f"{plain.spill_count:11d}  {aware.instruction_count:9d}  "
            f"{aware.spill_count:10d}"
        )
        aware.validate()
        # The extension must not explode code size, and never increases
        # spills on these workloads.
        assert aware.instruction_count <= plain.instruction_count + 2
        assert aware.spill_count <= plain.spill_count + 1
    total_plain = sum(p.spill_count for _n, p, _a in rows)
    total_aware = sum(a.spill_count for _n, _p, a in rows)
    lines.append(
        f"total spills: {total_plain} (off) vs {total_aware} (on)"
    )
    write_result("ablation_register_aware.txt", "\n".join(lines))
    assert total_aware <= total_plain
