"""Table I — code generation for the example target architecture.

Regenerates every column of the paper's Table I: original and
Split-Node DAG node counts, registers per file, spills inserted,
optimal ("by hand") instruction count, AVIV's instruction count, and
CPU time; the parenthesised heuristics-off columns are produced for the
small blocks by default and for all blocks with ``REPRO_FULL=1``.

Expected shape versus the paper: AVIV within a few instructions of
optimal on every block; 2-register rows (Ex6/Ex7) cost more
instructions and may insert spills; heuristics-off never produces worse
code but takes far longer.
"""

from __future__ import annotations

import pytest

from repro.eval import (
    PAPER_TABLE1,
    format_comparison,
    format_rows,
    run_table1,
)

from conftest import full_mode, write_result


@pytest.fixture(scope="module")
def table1_rows():
    return run_table1(
        with_optimal=True,
        with_heuristics_off=full_mode(),
        # 250k expansions prove every row's optimum, including Ex7's
        # spill-free 15 (~180k nodes); the fast default leaves the
        # 2-register rows as upper bounds.
        optimal_budget=250_000 if full_mode() else 20_000,
    )


def test_bench_table1(benchmark, table1_rows):
    rows = benchmark.pedantic(
        lambda: run_table1(with_optimal=False), rounds=1, iterations=1
    )
    text = format_rows(table1_rows, "Table I — example target architecture")
    text += "\n\n" + format_comparison(
        table1_rows, PAPER_TABLE1, "Measured vs. paper (paper values in parens)"
    )
    write_result("table1.txt", text)
    # Shape assertions (who wins, by roughly what factor):
    by_name = {row.block: row for row in table1_rows}
    for row in table1_rows:
        assert row.validated, f"{row.block} failed end-to-end validation"
        if row.by_hand is not None:
            # AVIV near-optimal on the 4-register rows (paper's worst gap
            # is 4); the 2-register rows may gap further — the paper's own
            # diagnosis: "the initial functional unit assignment cost
            # function did not detect that [its] assignments ... would
            # result in spills".  Heuristics-off recovers the optimum.
            limit = 4 if row.registers_per_file >= 4 else 8
            assert row.aviv - row.by_hand <= limit, row.block
            if row.aviv_no_heuristics is not None:
                assert row.aviv_no_heuristics - row.by_hand <= 1, row.block
    # Split-Node DAGs are several times larger than the original DAGs.
    for row in table1_rows:
        assert row.split_node_nodes >= 2 * row.original_nodes
    # Tight register files never produce *better* code.
    assert by_name["Ex6"].aviv >= by_name["Ex4"].aviv
    assert by_name["Ex7"].aviv >= by_name["Ex5"].aviv


def test_bench_table1_heuristics_off_small_blocks(benchmark):
    """The parenthesised columns for Ex1–Ex3: same or better quality at
    a multiple of the CPU time (the paper's heuristics ran in a fraction
    of the exhaustive time)."""
    from repro.covering import HeuristicConfig, generate_block_solution
    from repro.eval import workload
    from repro.isdl import example_architecture

    machine = example_architecture(4)
    names = (
        ["Ex1", "Ex2", "Ex3", "Ex4", "Ex5"] if full_mode() else ["Ex1", "Ex2", "Ex3"]
    )
    lines = ["Block  Aviv  Aviv(no heur)  CPU on  CPU off  slowdown"]

    def run_all():
        results = []
        for name in names:
            dag = workload(name).build()
            fast = generate_block_solution(
                dag, machine, HeuristicConfig.default()
            )
            slow = generate_block_solution(
                dag, machine, HeuristicConfig.heuristics_off()
            )
            results.append((name, fast, slow))
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for name, fast, slow in results:
        slowdown = slow.cpu_seconds / max(fast.cpu_seconds, 1e-9)
        lines.append(
            f"{name:5s}  {fast.instruction_count:4d}  "
            f"{slow.instruction_count:13d}  {fast.cpu_seconds:6.3f}  "
            f"{slow.cpu_seconds:7.3f}  {slowdown:8.1f}x"
        )
        # Heuristics-off explores a superset: never worse quality.
        assert slow.instruction_count <= fast.instruction_count
    write_result("table1_heuristics_off.txt", "\n".join(lines))
