"""Extension bench: code generation for an exposed-pipeline VLIW.

The paper's targets are single-cycle; this bench retargets the Table I
workloads to ``pipelined_dsp_architecture`` (two-cycle multipliers) and
reports how many NOP stall words the scheduler had to emit versus how
many multiply latencies it hid under other work.

Expected shape: code grows only modestly versus the single-cycle
machine — the covering engine fills most multiply shadows with loads
and independent operations, so NOPs stay rare.
"""

from __future__ import annotations

import pytest

from repro.asmgen import compile_dag
from repro.eval import WORKLOADS
from repro.ir import BasicBlock, Function, interpret_function
from repro.isdl import example_architecture, pipelined_dsp_architecture
from repro.simulator import run_program

from conftest import write_result


def test_bench_pipelined_vliw(benchmark):
    single = example_architecture(4)
    pipelined = pipelined_dsp_architecture(4)

    def compile_all():
        rows = []
        for load in WORKLOADS:
            dag = load.build()
            base = compile_dag(dag, single)
            pipe = compile_dag(dag, pipelined)
            rows.append((load, dag, base, pipe))
        return rows

    rows = benchmark.pedantic(compile_all, rounds=1, iterations=1)
    lines = ["Block  1-cycle MUL  2-cycle MUL  NOPs  growth"]
    for load, dag, base, pipe in rows:
        nops = sum(
            1
            for instruction in pipe.program.instructions
            if instruction.is_empty()
        )
        growth = pipe.total_instructions - base.total_instructions
        lines.append(
            f"{load.name:5s}  {base.total_instructions:11d}  "
            f"{pipe.total_instructions:11d}  {nops:4d}  {growth:+6d}"
        )
        # Correctness on the pipelined machine.
        function = Function(load.name)
        function.add_block(BasicBlock("entry", dag))
        reference = interpret_function(function, load.inputs)
        result = run_program(pipe.program, pipelined, load.inputs)
        for symbol in dag.store_symbols():
            assert result.variables[symbol] == reference[symbol], load.name
        # Latency may cost cycles but never saves any...
        assert pipe.total_instructions >= base.total_instructions
        # ...and the scheduler hides most of it: bounded growth.
        assert growth <= 4, load.name
    write_result("pipelined_vliw.txt", "\n".join(lines))
