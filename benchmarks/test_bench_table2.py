"""Table II — retargeting to Architecture II.

The paper removes SUB from U1 and deletes U3 entirely, re-runs Ex1–Ex5,
and observes that "for several of these basic blocks, removing a
functional unit does not degrade performance".

Expected shape: Split-Node DAGs shrink substantially versus Table I;
instruction counts stay close to the Table I results (within a couple
of instructions) despite a third of the datapath disappearing.
"""

from __future__ import annotations

import pytest

from repro.eval import (
    PAPER_TABLE2,
    format_comparison,
    format_rows,
    run_table1,
    run_table2,
)

from conftest import write_result


@pytest.fixture(scope="module")
def table2_rows():
    return run_table2(with_optimal=True, optimal_budget=20_000)


def test_bench_table2(benchmark, table2_rows):
    benchmark.pedantic(
        lambda: run_table2(with_optimal=False), rounds=1, iterations=1
    )
    text = format_rows(table2_rows, "Table II — Architecture II")
    text += "\n\n" + format_comparison(
        table2_rows, PAPER_TABLE2, "Measured vs. paper (paper values in parens)"
    )
    write_result("table2.txt", text)
    for row in table2_rows:
        assert row.validated
        assert row.spills_inserted == 0  # paper: no spills at 4 regs
        if row.by_hand is not None:
            assert row.aviv - row.by_hand <= 4


def test_bench_table2_vs_table1_shape(benchmark, table2_rows):
    """Cross-table shape: smaller machine -> smaller Split-Node DAG,
    and similar code quality (paper: within ~1 instruction per block)."""
    rows1 = benchmark.pedantic(
        lambda: run_table1(with_optimal=False), rounds=1, iterations=1
    )
    table1 = {row.block: row for row in rows1}
    lines = ["Block  SN(arch1)  SN(arch2)  Aviv(arch1)  Aviv(arch2)"]
    for row in table2_rows:
        one = table1[row.block]
        lines.append(
            f"{row.block:5s}  {one.split_node_nodes:9d}  "
            f"{row.split_node_nodes:9d}  {one.aviv:11d}  {row.aviv:11d}"
        )
        assert row.split_node_nodes < one.split_node_nodes
        # Removing a unit costs at most a few instructions (paper: <= 1).
        assert row.aviv <= one.aviv + 3
    write_result("table2_vs_table1.txt", "\n".join(lines))
