"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper.  Besides the
pytest-benchmark timing, each bench writes its reproduction artefact
(the table text, the figure data, the DOT file) to
``benchmarks/results/`` so the output survives pytest's capture.

Environment:
    REPRO_FULL=1  run the expensive variants (full heuristics-off rows
                  for Table I, larger optimal-search budgets).
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Repo checkout root.  The two ``BENCH_*.json`` reports are written
#: here as well as into ``results/``: the root copies are committed /
#: uploaded as CI artifacts, so the performance trajectory is diffable
#: from the repository itself while ``benchmarks/results/`` stays
#: ignored scratch space.
REPO_ROOT = pathlib.Path(__file__).parent.parent


def full_mode() -> bool:
    return os.environ.get("REPRO_FULL", "") == "1"


def write_result(name: str, text: str) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    return path


@pytest.fixture
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
