"""Codegen self-profile — the compiler's own performance trajectory.

Compiles every Table-I workload under a telemetry session and writes
``benchmarks/results/BENCH_codegen.json`` (schema
``repro/bench-codegen/v1``): per-phase wall/CPU timings plus the search
counters (assignments scored/pruned, cliques enumerated, cover
iterations, spill rounds) for each workload.  CI validates the file on
every push, so a PR that regresses compile time or blows up the search
space shows up in the artifact diff rather than anecdotally.

Expected shape: covering dominates compile time on every workload (the
paper calls clique generation "the most time consuming portion of our
algorithm"), and the counters are exactly reproducible run to run —
the whole pipeline is deterministic.
"""

from __future__ import annotations

import json

from repro.telemetry import (
    collect_codegen_bench,
    make_bench_report,
    validate_bench_report,
    write_bench_report,
)

from conftest import REPO_ROOT, RESULTS_DIR, full_mode, write_result


_SMOKE_WORKLOADS = ["Ex1", "Ex2", "Ex3"]


def test_bench_codegen_profile(benchmark, results_dir):
    names = None if full_mode() else _SMOKE_WORKLOADS
    entries = benchmark.pedantic(
        lambda: collect_codegen_bench(names), rounds=1, iterations=1
    )
    path = results_dir / "BENCH_codegen.json"
    write_bench_report(str(path), entries)
    write_bench_report(str(REPO_ROOT / "BENCH_codegen.json"), entries)
    payload = json.loads(path.read_text())
    validate_bench_report(payload)  # round-trips schema-valid

    lines = ["workload  instrs  spills  cover.iter  cliques  wall ms"]
    for entry in entries:
        counters = entry["report"]["counters"]
        wall = sum(
            p["wall_s"] for p in entry["report"]["phases"]
            if "/" not in p["path"]
        )
        lines.append(
            f"{entry['workload']:8s}  {entry['metrics']['instructions']:6d}"
            f"  {entry['metrics']['spills']:6d}"
            f"  {counters.get('cover.iterations', 0):10d}"
            f"  {counters.get('cliques.enumerated', 0):7d}"
            f"  {1000 * wall:7.1f}"
        )
    write_result("codegen_profile.txt", "\n".join(lines))

    # Shape assertions: the search actually ran, and covering dominates.
    for entry in entries:
        counters = entry["report"]["counters"]
        assert counters["cover.iterations"] > 0, entry["workload"]
        assert counters["cliques.enumerated"] > 0, entry["workload"]
        assert entry["metrics"]["instructions"] > 0, entry["workload"]
        by_path = {
            p["path"]: p["wall_s"] for p in entry["report"]["phases"]
        }
        covering = next(
            (v for k, v in by_path.items() if k.endswith("covering.block")),
            0.0,
        )
        total = next(
            (v for k, v in by_path.items() if k == "compile"), 0.0
        )
        assert covering > 0.5 * total, (
            f"{entry['workload']}: covering {covering:.4f}s not dominant "
            f"in {total:.4f}s"
        )


def test_bench_codegen_counters_deterministic(benchmark):
    """Two profiled compiles of the same workload agree counter for
    counter (the determinism CI leans on for golden comparisons)."""
    first = benchmark.pedantic(
        lambda: collect_codegen_bench(["Ex1"]), rounds=1, iterations=1
    )
    second = collect_codegen_bench(["Ex1"])
    c1 = first[0]["report"]["counters"]
    c2 = second[0]["report"]["counters"]
    assert c1 == c2
    validate_bench_report(make_bench_report(first))
