"""Ablations of the engine's heuristics (Section VI narrative).

"AVIV incorporates multiple heuristics that can be turned off if
desired. ... It is clear that our pruning heuristics work very well,
and generate the same quality results within a fraction of the CPU time
required to find the optimum solution."

Three sweeps over the Table I workloads on the Fig. 3 architecture:

- assignment beam width (``num_assignments``): quality saturates after
  a handful of assignments;
- the clique level-window (IV-C.2): fewer cliques, same quality;
- lookahead tie-breaking (IV-D): on vs off.
"""

from __future__ import annotations

import pytest

from repro.covering import HeuristicConfig, generate_block_solution
from repro.eval import workload
from repro.isdl import example_architecture

from conftest import write_result

WORKLOAD_NAMES = ["Ex1", "Ex2", "Ex3", "Ex4", "Ex5"]


def _run(name: str, config: HeuristicConfig):
    dag = workload(name).build()
    return generate_block_solution(dag, example_architecture(4), config)


def test_bench_ablation_beam_width(benchmark):
    widths = [1, 2, 4, 8, 16]
    lines = ["Block  " + "  ".join(f"beam={w}" for w in widths)]

    def sweep():
        table = {}
        for name in WORKLOAD_NAMES:
            table[name] = [
                _run(
                    name,
                    HeuristicConfig.default().with_(num_assignments=w),
                ).instruction_count
                for w in widths
            ]
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for name in WORKLOAD_NAMES:
        counts = table[name]
        lines.append(
            f"{name:5s}  " + "  ".join(f"{c:6d}" for c in counts)
        )
        # Widening the beam can only help (monotone improvement).
        assert counts == sorted(counts, reverse=True) or all(
            counts[i] >= counts[i + 1] - 0 for i in range(len(counts) - 1)
        )
        assert min(counts) == counts[-1]
    write_result("ablation_beam_width.txt", "\n".join(lines))


def test_bench_ablation_level_window(benchmark):
    windows = [0, 1, 2, 4, None]
    lines = [
        "Block  "
        + "  ".join(f"win={'off' if w is None else w}" for w in windows)
    ]

    def sweep():
        table = {}
        for name in WORKLOAD_NAMES:
            table[name] = [
                _run(
                    name,
                    HeuristicConfig.default().with_(level_window=w),
                ).instruction_count
                for w in windows
            ]
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for name in WORKLOAD_NAMES:
        counts = table[name]
        lines.append(f"{name:5s}  " + "  ".join(f"{c:7d}" for c in counts))
        # Paper's claim: the window "maintains the quality of our
        # results" — allow at most a small deviation from window-off.
        assert counts[-2] - counts[-1] <= 2  # window=4 vs off
    write_result("ablation_level_window.txt", "\n".join(lines))


def test_bench_ablation_lookahead(benchmark):
    lines = ["Block  lookahead=on  lookahead=off"]

    def sweep():
        table = {}
        for name in WORKLOAD_NAMES:
            on = _run(name, HeuristicConfig.default())
            off = _run(
                name, HeuristicConfig.default().with_(lookahead=False)
            )
            table[name] = (on.instruction_count, off.instruction_count)
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for name in WORKLOAD_NAMES:
        on, off = table[name]
        lines.append(f"{name:5s}  {on:12d}  {off:13d}")
        assert abs(on - off) <= 3
    write_result("ablation_lookahead.txt", "\n".join(lines))


def test_bench_ablation_branch_and_bound(benchmark):
    """Branch-and-bound pruning must not change the result, only time."""

    def sweep():
        table = {}
        for name in WORKLOAD_NAMES[:3]:
            with_bb = _run(name, HeuristicConfig.default())
            without_bb = _run(
                name,
                HeuristicConfig.default().with_(branch_and_bound=False),
            )
            table[name] = (with_bb, without_bb)
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Block  cost(bb)  cost(no bb)  time(bb)  time(no bb)"]
    for name, (with_bb, without_bb) in table.items():
        assert with_bb.instruction_count == without_bb.instruction_count
        lines.append(
            f"{name:5s}  {with_bb.instruction_count:8d}  "
            f"{without_bb.instruction_count:11d}  "
            f"{with_bb.cpu_seconds:8.3f}  {without_bb.cpu_seconds:11.3f}"
        )
    write_result("ablation_branch_and_bound.txt", "\n".join(lines))
