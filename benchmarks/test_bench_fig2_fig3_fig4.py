"""Figures 2, 3, and 4 — the running example.

- Fig. 2: the example basic-block DAG (regenerated as stats + DOT).
- Fig. 3: the example target architecture (regenerated as the machine
  description summary and its ISDL-lite source).
- Fig. 4: the Split-Node DAG of the Fig. 2 block on the Fig. 3 machine
  (regenerated as node-kind counts, the 2x2x3 = 12 assignment space the
  paper computes in Section IV-A, and DOT).
"""

from __future__ import annotations

import pytest

from repro.ir import BlockDAG, Opcode, dag_to_dot, format_dag
from repro.isdl import TransferDatabase, OperationDatabase, example_architecture, machine_to_isdl
from repro.sndag import build_split_node_dag, split_node_dag_to_dot

from conftest import write_result


def _fig2_dag() -> BlockDAG:
    dag = BlockDAG()
    a, b, c, d = dag.var("a"), dag.var("b"), dag.var("c"), dag.var("d")
    add = dag.operation(Opcode.ADD, (a, b))
    mul = dag.operation(Opcode.MUL, (c, d))
    sub = dag.operation(Opcode.SUB, (add, mul))
    dag.store("out", sub)
    return dag


def test_bench_fig2_block_dag(benchmark):
    dag = benchmark(_fig2_dag)
    stats = dag.stats()
    text = "Fig. 2 — sample basic block DAG\n"
    text += format_dag(dag) + "\n"
    text += f"stats: {stats}\n"
    write_result("fig2_dag.txt", text)
    write_result("fig2_dag.dot", dag_to_dot(dag, "fig2"))
    assert stats["operation_nodes"] == 3
    assert stats["leaf_nodes"] == 4


def test_bench_fig3_architecture(benchmark):
    machine = benchmark(example_architecture, 4)
    db = OperationDatabase(machine)
    transfers = TransferDatabase(machine)
    text = "Fig. 3 — example target architecture\n"
    text += machine.describe() + "\n\nISDL-lite source:\n"
    text += machine_to_isdl(machine) + "\n"
    text += "\noperation database:\n"
    for opcode in db.supported_opcodes():
        units = ", ".join(m.unit for m in db.matches(opcode))
        text += f"  {opcode.name}: {units}\n"
    text += f"direct transfers: {len(transfers.direct_transfers())}\n"
    write_result("fig3_architecture.txt", text)
    assert [m.unit for m in db.matches(Opcode.ADD)] == ["U1", "U2", "U3"]
    assert [m.unit for m in db.matches(Opcode.SUB)] == ["U1", "U2"]
    assert [m.unit for m in db.matches(Opcode.MUL)] == ["U2", "U3"]


def test_bench_fig4_split_node_dag(benchmark):
    machine = example_architecture(4)
    dag = _fig2_dag()
    sn = benchmark(build_split_node_dag, dag, machine)
    stats = sn.stats()
    text = "Fig. 4 — Split-Node DAG of the Fig. 2 block on the Fig. 3 machine\n"
    text += f"stats: {stats}\n"
    text += f"assignment space: {sn.assignment_space_size()} (paper: 2 x 2 x 3 = 12)\n"
    text += (
        "paper's Split-Node DAG had 30 nodes for the 8-node Ex1 block; "
        f"this block yields {stats['total']} nodes (same growth shape)\n"
    )
    write_result("fig4_split_node_dag.txt", text)
    write_result("fig4_split_node_dag.dot", split_node_dag_to_dot(sn, "fig4"))
    assert sn.assignment_space_size() == 12
    assert stats["split_nodes"] == 4  # 3 ops + 1 store
    assert stats["alternative_nodes"] == 7  # 3 ADD + 2 SUB + 2 MUL
    assert stats["total"] >= 3 * dag.stats()["paper_nodes"]
