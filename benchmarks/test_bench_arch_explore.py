"""Architecture exploration (Section VI's closing argument).

"The flexibility of the AVIV retargetable code generation system allows
for the exploration of different architectures until the best one is
found."  This bench retargets the Table I workloads across four
machines — the Fig. 3 VLIW, Architecture II, a dual-bus variant, and a
single-unit sequential machine — and reports code size per (block,
machine), validating each program on the simulator.

Expected shape: Architecture II loses at most a couple of instructions
despite losing a third of the datapath, and the extra bus never hurts.
An instructive model effect shows up here: with every operand starting
in data memory behind one shared bus, the *bus* is the bottleneck on
these small blocks, so the single-unit machine — which pays no
inter-unit transfers at all — stays within a couple of instructions of
the 3-unit VLIW and occasionally matches or beats it.  The exploration
loop is exactly how a designer would discover that the cheap datapath
suffices for these kernels.
"""

from __future__ import annotations

import pytest

from repro.asmgen import compile_dag
from repro.eval import WORKLOADS
from repro.ir import BasicBlock, Function, interpret_function
from repro.isdl import (
    architecture_two,
    dual_bus_architecture,
    example_architecture,
    single_unit_architecture,
)
from repro.simulator import run_program

from conftest import write_result

MACHINES = [
    ("fig3", example_architecture(4)),
    ("archII", architecture_two(4)),
    ("dualbus", dual_bus_architecture(4)),
    ("single", single_unit_architecture(8)),
]


@pytest.fixture(scope="module")
def exploration():
    table = {}
    for load in WORKLOADS:
        dag = load.build()
        function = Function(load.name)
        function.add_block(BasicBlock("entry", dag))
        reference = interpret_function(function, load.inputs)
        row = {}
        for label, machine in MACHINES:
            compiled = compile_dag(dag, machine)
            result = run_program(compiled.program, machine, load.inputs)
            for symbol in dag.store_symbols():
                assert result.variables[symbol] == reference[symbol], (
                    load.name,
                    label,
                )
            body = compiled.blocks["entry"].body_size
            row[label] = body
        table[load.name] = row
    return table


def test_bench_architecture_exploration(benchmark, exploration):
    def explore_one():
        load = WORKLOADS[0]
        dag = load.build()
        return [
            compile_dag(dag, machine).total_instructions
            for _label, machine in MACHINES
        ]

    benchmark.pedantic(explore_one, rounds=1, iterations=1)
    labels = [label for label, _m in MACHINES]
    lines = ["Block  " + "  ".join(f"{l:>7s}" for l in labels)]
    for name, row in exploration.items():
        lines.append(
            f"{name:5s}  " + "  ".join(f"{row[l]:7d}" for l in labels)
        )
    write_result("architecture_exploration.txt", "\n".join(lines))
    for name, row in exploration.items():
        # The shared bus dominates: all machines land within a small
        # band of each other on these memory-bound blocks.
        assert abs(row["single"] - row["fig3"]) <= 3
        # Removing U3 + SUB on U1 costs at most a few instructions.
        assert row["archII"] <= row["fig3"] + 3
        # An extra bus can only help (or be neutral).
        assert row["dualbus"] <= row["fig3"] + 1


def test_bench_exploration_finds_cheapest_machine(benchmark, exploration):
    """The use case from the paper's intro: pick the best architecture
    per application by comparing generated code size."""

    def pick_best():
        winners = {}
        for name, row in exploration.items():
            winners[name] = min(row, key=lambda label: (row[label], label))
        return winners

    winners = benchmark.pedantic(pick_best, rounds=1, iterations=1)
    lines = ["Block  best machine"]
    for name, label in winners.items():
        lines.append(f"{name:5s}  {label}")
    write_result("architecture_winners.txt", "\n".join(lines))
    # Every workload has a well-defined winner drawn from the candidates.
    assert set(winners) == {w.name for w in WORKLOADS}
    assert all(label in dict(MACHINES) for label in winners.values())
