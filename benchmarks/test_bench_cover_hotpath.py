"""Covering hot-path kernel comparison — ``BENCH_cover.json``.

Compiles the clique-heavy workloads (sum-of-products and wide
reductions with the level window off, where clique enumeration and
covering dominate exactly as the paper predicts) under both covering
kernels and writes ``benchmarks/results/BENCH_cover.json`` (schema
``repro/bench-cover/v1``): per-workload wall clock for the bitmask and
reference kernels, the speedup, and the schedule-identity verdict.

Gate: the two kernels must produce bit-identical schedules everywhere,
every heavy (clique-bound) workload must show a real speedup, and the
headline clique-heavy workload must clear 2x.  CI regenerates and
schema-validates the file on every push, so a regression in the bitmask
kernel's speed or fidelity shows up in the artifact diff.
"""

from __future__ import annotations

import json

from repro.telemetry import (
    collect_cover_bench,
    make_cover_report,
    validate_cover_report,
    write_cover_report,
)

from conftest import REPO_ROOT, full_mode, write_result


def test_bench_cover_hotpath(benchmark, results_dir):
    repeats = 5 if full_mode() else 3
    entries = benchmark.pedantic(
        lambda: collect_cover_bench(repeats=repeats), rounds=1, iterations=1
    )
    path = results_dir / "BENCH_cover.json"
    write_cover_report(str(path), entries)
    write_cover_report(str(REPO_ROOT / "BENCH_cover.json"), entries)
    payload = json.loads(path.read_text())
    validate_cover_report(payload)  # round-trips schema-valid

    lines = [
        "workload       heavy  bitmask ms  reference ms  speedup  identical"
    ]
    for entry in entries:
        lines.append(
            f"{entry['workload']:13s}  {str(entry['heavy']):5s}"
            f"  {1000 * entry['bitmask_s']:10.1f}"
            f"  {1000 * entry['reference_s']:12.1f}"
            f"  {entry['speedup']:6.2f}x"
            f"  {entry['identical']}"
        )
    write_result("cover_hotpath.txt", "\n".join(lines))

    # Fidelity: bit-identical schedules on every workload, both kernels
    # actually exercised their hot paths.
    for entry in entries:
        assert entry["identical"], entry["workload"]
        assert entry["counters"]["cliques.mask_kernel_calls"] > 0, (
            entry["workload"]
        )
        assert entry["counters"]["cover.iterations"] > 0, entry["workload"]

    # Speed: every clique-bound workload wins clearly, and the headline
    # clique-heavy result clears the 2x bar.
    heavy = [entry for entry in entries if entry["heavy"]]
    assert heavy, "no clique-bound workloads in the bench table"
    for entry in heavy:
        assert entry["speedup"] >= 1.5, (
            f"{entry['workload']}: bitmask kernel only "
            f"{entry['speedup']:.2f}x over reference"
        )
    best = max(entry["speedup"] for entry in heavy)
    assert best >= 2.0, (
        f"best clique-heavy speedup {best:.2f}x is below the 2x bar"
    )

    # The spill workload must actually spill — that is what exercises
    # the incremental clique rebuild path.
    spilled = next(e for e in entries if e["workload"] == "sop8-spill")
    assert spilled["metrics"]["spills"] > 0
    assert spilled["counters"].get("cover.incremental_rebuilds", 0) > 0


def test_bench_cover_report_shape(benchmark):
    """A single-workload collection round-trips the schema and records
    both kernels' timings."""
    entries = benchmark.pedantic(
        lambda: collect_cover_bench(["sop8-nowin"]), rounds=1, iterations=1
    )
    assert len(entries) == 1
    payload = make_cover_report(entries)
    validate_cover_report(payload)
    entry = entries[0]
    assert entry["bitmask_s"] > 0 and entry["reference_s"] > 0
    assert entry["identical"] is True
