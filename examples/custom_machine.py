"""Describe a custom ASIP in ISDL-lite and drive the full toolchain.

Run with::

    python examples/custom_machine.py

Shows everything Fig. 1 of the paper promises from one machine
description: code generation (with a complex MAC instruction and an
issue constraint), the generated assembler (text + binary encoding),
the disassembler, and the instruction-level simulator.
"""

from repro import (
    compile_function,
    compile_source,
    decode_program,
    encode_program,
    interpret_function,
    parse_machine,
    program_to_text,
    run_program,
)

MACHINE_DESCRIPTION = """
machine my_asip {
  wordsize 32;
  memory DM size 512;
  regfile RA size 4;
  regfile RB size 4;
  unit ALU regfile RA { op ADD; op SUB; op NEG = SUB($1, $1); }
  unit MACU regfile RB {
    op MUL;
    op ADD;
    op MAC = ADD(MUL($0, $1), $2);
  }
  bus XBUS connects DM, RA, RB;
  # the MAC draws too much power to co-issue with an ALU subtract
  constraint never MACU.MAC & ALU.SUB;
}
"""

SOURCE = """
    # one lattice-filter-ish update
    acc = acc + g * x;
    d = acc - x;
"""


def main() -> None:
    machine = parse_machine(MACHINE_DESCRIPTION)
    print(machine.describe())
    print()

    function = compile_source(SOURCE)
    compiled = compile_function(function, machine)

    print("generated assembly:")
    text = program_to_text(compiled.program)
    print(text)

    image = encode_program(compiled.program, machine)
    print(f"binary encoding: {len(image.words)} words x {image.word_bits} "
          f"bits = {image.code_size_bytes} bytes of ROM")
    print("first words:", [hex(w) for w in image.words[:3]])
    print()

    decoded = decode_program(image, machine)
    inputs = {"acc": 5, "g": 3, "x": 4}
    reference = interpret_function(function, inputs)
    for label, program in (("assembled", compiled.program), ("decoded", decoded)):
        result = run_program(program, machine, inputs)
        assert result.variables["acc"] == reference["acc"]
        assert result.variables["d"] == reference["d"]
        print(f"{label:9s}: acc={result.variables['acc']} "
              f"d={result.variables['d']} in {result.cycles} cycles")

    block = compiled.blocks[next(iter(compiled.blocks))]
    ops = [
        task.op_name
        for task in block.solution.graph.tasks.values()
        if task.op_name is not None
    ]
    if "MAC" in ops:
        print("\nthe complex MAC instruction covered the multiply-add pair")


if __name__ == "__main__":
    main()
