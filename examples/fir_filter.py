"""A DSP workload end to end: an unrolled FIR filter on three machines.

Run with::

    python examples/fir_filter.py

Demonstrates the paper's motivating flow: the front end unrolls the
filter loop (Section II's machine-independent parallelism extraction),
the covering engine packs multiplies and adds across functional units,
and retargeting is a one-line machine swap.
"""

from repro import (
    architecture_two,
    compile_function,
    compile_source,
    example_architecture,
    interpret_function,
    run_program,
)
from repro.isdl import mac_dsp_architecture

TAPS = 4

SOURCE = f"""
    # {TAPS}-tap FIR: acc = sum(x[i] * h[i]); the for loop is fully
    # unrolled by the optimizer, exposing all taps to the scheduler.
    acc = 0;
    for (i = 0; i < {TAPS}; i = i + 1) {{
        acc = acc + x[i] * h[i];
    }}
    y = acc;
"""


def main() -> None:
    function = compile_source(SOURCE)
    signal = [3, -1, 4, 1]
    coefficients = [2, 7, 1, 8]
    inputs = {f"x[{i}]": signal[i] for i in range(TAPS)}
    inputs.update({f"h[{i}]": coefficients[i] for i in range(TAPS)})
    expected = sum(s * c for s, c in zip(signal, coefficients))
    reference = interpret_function(function, inputs)
    assert reference["y"] == expected

    machines = [
        ("Fig. 3 VLIW (3 units)", example_architecture(4)),
        ("Architecture II (2 units)", architecture_two(4)),
        ("DSP with MAC instruction", mac_dsp_architecture(4)),
    ]
    print(f"{TAPS}-tap FIR, y = {expected}\n")
    for label, machine in machines:
        compiled = compile_function(function, machine)
        result = run_program(compiled.program, machine, inputs)
        assert result.variables["y"] == expected, label
        block = compiled.blocks[next(iter(compiled.blocks))]
        mac_used = any(
            task.op_name == "MAC"
            for task in block.solution.graph.tasks.values()
            if task.op_name is not None
        )
        note = "  (uses complex MAC op)" if mac_used else ""
        print(
            f"{label:28s}: {compiled.total_instructions:3d} instructions, "
            f"{result.cycles:3d} cycles{note}"
        )
    print("\nall three machines compute the same filter — retargeting is "
          "a machine-description swap")


if __name__ == "__main__":
    main()
