"""Hardware–software co-design: explore the processor design space.

Run with::

    python examples/architecture_exploration.py

The paper's Section I argues that retargetable compilation is what
makes ASIP design-space exploration possible: "by varying the machine
description and evaluating the resulting object code, the design space
of both hardware and software components can be effectively explored."

This example sweeps a family of candidate ASIPs — varying the number of
functional units, their op sets, and the register file depth — compiles
a small DSP application for each, and ranks the candidates by total
code size (the paper's cost metric: on-chip ROM).
"""

from repro import compile_function, compile_source, run_program
from repro.errors import CoverageError
from repro.ir import interpret_function
from repro.isdl import parse_machine

APPLICATION = """
    # complex multiply-accumulate + error, Ex5-style
    re = re + (xr * hr - xi * hi);
    im = im + (xr * hi + xi * hr);
    e = re - t;
"""

INPUTS = {"re": 10, "im": -2, "xr": 3, "xi": 4, "hr": 5, "hi": 6, "t": 7}


def candidate(name: str, units: str, regs: int) -> str:
    """Build an ISDL-lite description from a unit spec string like
    'ADD,SUB|ADD,SUB,MUL' (one |-separated op list per unit)."""
    unit_specs = units.split("|")
    lines = [f"machine {name} {{", "  memory DM size 1024;"]
    for index in range(len(unit_specs)):
        lines.append(f"  regfile RF{index + 1} size {regs};")
    connects = ", ".join(
        ["DM"] + [f"RF{i + 1}" for i in range(len(unit_specs))]
    )
    for index, spec in enumerate(unit_specs):
        ops = " ".join(f"op {op};" for op in spec.split(","))
        lines.append(
            f"  unit U{index + 1} regfile RF{index + 1} {{ {ops} }}"
        )
    lines.append(f"  bus B1 connects {connects};")
    lines.append("}")
    return "\n".join(lines)


CANDIDATES = [
    ("tiny1", "ADD,SUB,MUL", 4),
    ("dual_sym", "ADD,SUB,MUL|ADD,SUB,MUL", 4),
    ("dual_asym", "ADD,SUB|ADD,SUB,MUL", 4),
    ("fig3", "ADD,SUB|ADD,SUB,MUL|ADD,MUL", 4),
    ("fig3_small_rf", "ADD,SUB|ADD,SUB,MUL|ADD,MUL", 2),
    ("quad", "ADD,SUB|ADD,SUB,MUL|ADD,MUL|ADD,SUB,MUL", 4),
]


def main() -> None:
    function = compile_source(APPLICATION)
    reference = interpret_function(function, INPUTS)
    print("candidate ASIPs for the complex-MAC application:\n")
    results = []
    for name, units, regs in CANDIDATES:
        machine = parse_machine(candidate(name, units, regs))
        try:
            compiled = compile_function(function, machine)
        except CoverageError as error:
            print(f"  {name:14s}: uncompilable ({error})")
            continue
        simulated = run_program(compiled.program, machine, INPUTS)
        for symbol in ("re", "im", "e"):
            assert simulated.variables[symbol] == reference[symbol], name
        spills = compiled.total_spills
        results.append(
            (compiled.total_instructions, name, len(units.split("|")), regs, spills)
        )
    results.sort()
    print(f"  {'rank':4s}  {'machine':14s}  {'units':5s}  {'regs':4s}  "
          f"{'spills':6s}  {'code size':9s}")
    for rank, (size, name, units, regs, spills) in enumerate(results, 1):
        print(f"  {rank:4d}  {name:14s}  {units:5d}  {regs:4d}  "
              f"{spills:6d}  {size:9d}")
    best = results[0]
    print(f"\nbest candidate: {best[1]} "
          f"({best[0]} instructions of on-chip ROM)")


if __name__ == "__main__":
    main()
