"""A whole program with control flow: compile, assemble, simulate.

Run with::

    python examples/whole_program.py

The paper generates code per basic block and stitches blocks with
conventional control-flow instructions (Section III-C).  This example
compiles an iterative kernel — fixed-point square root by binary
search — whose CFG has loops and branches, shows the emitted program
with labels and fallthroughs, round-trips it through the binary
assembler, and validates it against the reference interpreter over a
range of inputs.
"""

from repro import (
    compile_function,
    compile_source,
    decode_program,
    encode_program,
    interpret_function,
    run_program,
)
from repro.isdl import control_flow_architecture

SOURCE = """
    # integer square root of n by binary search
    lo = 0;
    hi = n + 1;
    while (lo + 1 < hi) {
        mid = (lo + hi) >> 1;
        if (mid * mid <= n) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    root = lo;
"""


def main() -> None:
    machine = control_flow_architecture(4)
    function = compile_source(SOURCE)
    print(f"CFG: {len(function)} basic blocks "
          f"({', '.join(function.block_names)})\n")
    compiled = compile_function(function, machine)
    print(compiled.program.listing())
    print()

    image = encode_program(compiled.program, machine)
    print(f"binary: {len(image.words)} words of {image.word_bits} bits "
          f"({image.code_size_bytes} bytes of ROM)")
    decoded = decode_program(image, machine)

    print("\n n  sqrt(n)  cycles")
    for n in (0, 1, 2, 3, 4, 10, 99, 100, 1023):
        reference = interpret_function(function, {"n": n})
        result = run_program(compiled.program, machine, {"n": n})
        replay = run_program(decoded, machine, {"n": n})
        assert (
            result.variables["root"]
            == replay.variables["root"]
            == reference["root"]
        )
        print(f"{n:4d}  {result.variables['root']:7d}  {result.cycles:6d}")
    print("\nsimulator, binary replay, and interpreter all agree")


if __name__ == "__main__":
    main()
