"""Register starvation: spill insertion and peephole cleanup.

Run with::

    python examples/spills_and_peephole.py

The paper's Ex6/Ex7 rows re-run Ex4/Ex5 with only two registers per
file: the covering step's liveness upper bound detects the shortage
during scheduling, inserts spill (S) and load (L) transfer nodes
(Fig. 9), and detailed register allocation is still guaranteed to
succeed.  The peephole pass (Section IV-G) then removes any load/spill
the pessimistic lifetime analysis inserted unnecessarily and compacts
the schedule.
"""

from repro import (
    compile_source,
    example_architecture,
    interpret_function,
    run_program,
)
from repro.asmgen import compile_dag
from repro.covering import generate_block_solution
from repro.ir import BasicBlock, Function
from repro.peephole import peephole_optimize
from repro.regalloc import allocate_registers

SOURCE = """
    # a wide reduction: five products summed (lots of live values)
    sum = x0*y0 + x1*y1 + x2*y2 + x3*y3 + x4*y4;
"""


def main() -> None:
    function = compile_source(SOURCE)
    dag = next(iter(function)).dag
    inputs = {f"x{i}": i + 1 for i in range(5)}
    inputs.update({f"y{i}": 2 * i - 3 for i in range(5)})
    reference = interpret_function(function, inputs)

    for regs in (4, 2):
        machine = example_architecture(regs)
        solution = generate_block_solution(dag, machine)
        print(f"--- {regs} registers per file ---")
        print(f"instructions before peephole: {solution.instruction_count}")
        print(f"spills inserted: {solution.spill_count}, "
              f"reloads: {solution.reload_count}")
        print(f"register estimate per bank: {solution.register_estimate}")
        report = peephole_optimize(solution)
        print(f"peephole: removed {report.spills_removed} spills / "
              f"{report.reloads_removed} reloads, saved "
              f"{report.cycles_saved} cycles")
        allocate_registers(solution)  # guaranteed to succeed (IV-F)
        print(f"final schedule ({solution.instruction_count} instructions):")
        print(solution.describe())

        compiled = compile_dag(dag, machine)
        result = run_program(compiled.program, machine, inputs)
        assert result.variables["sum"] == reference["sum"]
        print(f"simulated sum = {result.variables['sum']} "
              f"(reference {reference['sum']})\n")


if __name__ == "__main__":
    main()
