"""Developer tooling: the stepping debugger and execution statistics.

Run with::

    python examples/debugging.py

Compiles a looped kernel, steps it under the debugger (breakpoint on
the loop header, register inspection per iteration), and prints the
resource-activity profile an architect would use to find the
bottleneck.
"""

from repro import compile_function, compile_source
from repro.isdl import control_flow_architecture
from repro.simulator import Debugger, profile_run

SOURCE = """
    # sum of squares 1..n
    s = 0;
    i = 1;
    while (i <= n) {
        s = s + i * i;
        i = i + 1;
    }
"""


def main() -> None:
    machine = control_flow_architecture(4)
    function = compile_source(SOURCE)
    compiled = compile_function(function, machine)
    program = compiled.program
    print(program.listing())
    print()

    # Find the loop-header label (the block evaluating the condition).
    header = next(
        name
        for name, block in compiled.blocks.items()
        if block.solution.graph.condition_read is not None
    )
    debugger = Debugger(program, machine, {"n": 4})
    debugger.add_breakpoint(header)
    iteration = 0
    while debugger.run() == "breakpoint":
        iteration += 1
        print(
            f"hit {debugger.where()}  i={debugger.variable('i')} "
            f"s={debugger.variable('s')}  RF1={debugger.registers('RF1')}"
        )
        if iteration > 10:
            break
    print(f"finished after {debugger.state.cycle} cycles: "
          f"s = {debugger.variable('s')}")
    assert debugger.variable("s") == 1 + 4 + 9 + 16

    print("\nactivity profile:")
    stats = profile_run(program, machine, {"n": 4})
    print(stats.describe(machine))


if __name__ == "__main__":
    main()
