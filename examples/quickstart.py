"""Quickstart: compile one basic block for the paper's Fig. 3 VLIW.

Run with::

    python examples/quickstart.py

Pipeline shown here: minic source → expression DAG → Split-Node DAG →
concurrent covering (unit assignment + grouping + register banks +
scheduling) → detailed register allocation → VLIW assembly → simulation,
validated against the reference interpreter.
"""

from repro import (
    compile_function,
    compile_source,
    example_architecture,
    interpret_function,
    run_program,
)
from repro.sndag import build_split_node_dag


def main() -> None:
    source = """
        # part of a DSP conditional arm (the paper's Ex1-style block)
        y0 = (a + b) * (a - c);
        y1 = y0 + d;
    """
    function = compile_source(source)
    machine = example_architecture(registers_per_file=4)
    print(machine.describe())
    print()

    block = next(iter(function))
    sn = build_split_node_dag(block.dag, machine)
    print(f"original DAG: {block.dag.stats()['paper_nodes']} nodes")
    print(f"Split-Node DAG: {sn.stats()['total']} nodes "
          f"({sn.assignment_space_size()} possible assignments)")
    print()

    compiled = compile_function(function, machine)
    print(compiled.program.listing())
    print()

    inputs = {"a": 7, "b": 3, "c": 2, "d": 11}
    reference = interpret_function(function, inputs)
    result = run_program(compiled.program, machine, inputs)
    print(f"inputs:   {inputs}")
    print(f"simulator: y0={result.variables['y0']} y1={result.variables['y1']}")
    print(f"reference: y0={reference['y0']} y1={reference['y1']}")
    assert result.variables["y0"] == reference["y0"]
    assert result.variables["y1"] == reference["y1"]
    print(f"\nOK — {compiled.total_instructions} instructions, "
          f"{result.cycles} cycles")


if __name__ == "__main__":
    main()
